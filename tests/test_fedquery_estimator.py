"""Unit tests for the cost model's estimators and proofs.

The estimators are checked against *exact* counts from synthetic
in-memory stores with precisely known contents, including the
degenerate cases the ISSUE calls out: an empty member, a single-row
member, every row inside the query window, and missing stats (which
must fall back to the pre-cost-model global mode, never to a skip).
"""

from __future__ import annotations

import pytest

from repro.core.semantic import MetricStats, PerformanceResult, StoreStats
from repro.fedquery.ast import Predicate
from repro.fedquery.cost import (
    AGG_RECORD_BYTES,
    RAW_RECORD_BYTES,
    CostModel,
    unsatisfiable_over,
    vacuous_over,
    value_fraction,
)
from repro.fedquery.parser import parse_query
from repro.fedquery.planner import plan_query
from repro.fedquery.pushdown import (
    derive_value_bounds,
    derive_window,
    focus_allowlist,
    split_predicates,
)
from repro.mapping.memory import InMemoryExecution, InMemoryWrapper


def model_for(text: str) -> CostModel:
    query = parse_query(text)
    split = split_predicates(query)
    bounds = derive_value_bounds(split.value)
    aggregate = query.is_aggregate and bounds.pushable
    return CostModel(
        query,
        split,
        derive_window(split.time),
        bounds,
        focus_allowlist(split.focus),
        "aggregate" if aggregate else "raw",
    )


def store(metric_rows: dict[str, tuple[int, float, float]], **kwargs) -> StoreStats:
    defaults = dict(
        executions=kwargs.pop("executions", 2),
        start=kwargs.pop("start", 0.0),
        end=kwargs.pop("end", 10.0),
        foci=kwargs.pop("foci", ("/A", "/B")),
        types=kwargs.pop("types", ("synthetic",)),
        complete=kwargs.pop("complete", True),
    )
    return StoreStats(
        metrics=tuple(
            MetricStats(name, rows, lo, hi)
            for name, (rows, lo, hi) in metric_rows.items()
        ),
        **defaults,
    )


def pred(op: str, value: float) -> Predicate:
    return Predicate(field="value", op=op, value=str(value))


class TestRangeProofs:
    @pytest.mark.parametrize(
        "op,bound,expected",
        [
            ("=", 5.0, False), ("=", 11.0, True), ("=", -1.0, True),
            ("!=", 5.0, False), ("<", 0.0, True), ("<", 0.5, False),
            ("<=", -0.1, True), ("<=", 0.0, False),
            (">", 10.0, True), (">", 9.5, False),
            (">=", 10.5, True), (">=", 10.0, False),
        ],
    )
    def test_unsatisfiable_over_0_10(self, op, bound, expected):
        assert unsatisfiable_over(pred(op, bound), 0.0, 10.0) is expected

    @pytest.mark.parametrize(
        "op,bound,expected",
        [
            ("=", 5.0, False), ("!=", 11.0, True), ("!=", 5.0, False),
            ("<", 10.5, True), ("<", 10.0, False),
            ("<=", 10.0, True), ("<=", 9.9, False),
            (">", -0.5, True), (">", 0.0, False),
            (">=", 0.0, True), (">=", 0.1, False),
        ],
    )
    def test_vacuous_over_0_10(self, op, bound, expected):
        assert vacuous_over(pred(op, bound), 0.0, 10.0) is expected

    def test_point_range_equality(self):
        # lo == hi: both proofs become exact
        assert vacuous_over(pred("=", 7.0), 7.0, 7.0)
        assert unsatisfiable_over(pred("!=", 7.0), 7.0, 7.0)


class TestValueFraction:
    def test_no_predicates_is_one(self):
        assert value_fraction((), 0.0, 10.0) == 1.0

    def test_range_predicate_is_proportional(self):
        assert value_fraction((pred("<", 2.5),), 0.0, 10.0) == pytest.approx(0.25)
        assert value_fraction((pred(">=", 7.5),), 0.0, 10.0) == pytest.approx(0.25)

    def test_predicates_multiply(self):
        preds = (pred(">", 2.0), pred("<", 8.0))
        assert value_fraction(preds, 0.0, 10.0) == pytest.approx(0.8 * 0.8)

    def test_zero_width_range_is_exact(self):
        assert value_fraction((pred("=", 3.0),), 3.0, 3.0) == 1.0
        assert value_fraction((pred("=", 4.0),), 3.0, 3.0) == 0.0

    def test_fraction_clamped_to_unit_interval(self):
        assert value_fraction((pred("<", 99.0),), 0.0, 10.0) == 1.0
        assert value_fraction((pred(">", 99.0),), 0.0, 10.0) == 0.0


class TestMemberVerdicts:
    def test_zero_rows_skips(self):
        cost = model_for("SELECT count(m) GROUP BY app").member(
            store({"m": (0, 0.0, 0.0)})
        )
        assert cost.mode == "skip" and "0 rows" in cost.reason
        assert (cost.est_rows, cost.est_bytes) == (0, 0)

    def test_absent_metric_skips(self):
        cost = model_for("SELECT count(m) GROUP BY app").member(store({}))
        assert cost.mode == "skip" and "not recorded" in cost.reason

    def test_unsatisfiable_value_predicates_skip(self):
        cost = model_for("SELECT count(m) WHERE value > 100.0 GROUP BY app").member(
            store({"m": (50, 0.0, 10.0)})
        )
        assert cost.mode == "skip" and "unsatisfiable" in cost.reason

    def test_disjoint_focus_allowlist_skips(self):
        cost = model_for("SELECT count(m) WHERE focus = '/Z' GROUP BY app").member(
            store({"m": (50, 0.0, 10.0)})
        )
        assert cost.mode == "skip" and "focus" in cost.reason

    def test_foreign_type_skips(self):
        cost = model_for("SELECT count(m) WHERE type = 'other' GROUP BY app").member(
            store({"m": (50, 0.0, 10.0)})
        )
        assert cost.mode == "skip" and "type" in cost.reason

    def test_time_window_never_skips(self):
        # stats cover [0, 10] but the window starts at 100: some stores
        # ignore the window, so this is NOT a proof
        cost = model_for("SELECT count(m) WHERE start >= 100.0 GROUP BY app").member(
            store({"m": (50, 0.0, 10.0)})
        )
        assert cost.mode != "skip"

    def test_vacuous_strict_predicate_upgrades_to_aggregate(self):
        # strict '>' is not pushable globally, but every value in
        # [50, 90] satisfies it — aggregate with no bounds
        model = model_for("SELECT count(m) WHERE value > 10.0 GROUP BY app")
        assert model.global_mode == "raw"
        cost = model.member(store({"m": (50, 50.0, 90.0)}))
        assert cost.mode == "aggregate" and cost.vacuous == {"m"}

    def test_mixed_metric_modes(self):
        # one metric provably empty, the other live -> mixed member
        cost = model_for("SELECT count(a), count(b) GROUP BY app").member(
            store({"a": (0, 0.0, 0.0), "b": (9, 0.0, 5.0)})
        )
        assert cost.mode == "mixed"
        assert dict(cost.metric_modes) == {"a": "skip", "b": "aggregate"}

    def test_missing_stats_fall_back_to_global_mode(self):
        model = model_for("SELECT count(m) GROUP BY app")
        cost = model.member(None)
        assert cost.stats_missing is True
        assert cost.mode == model.global_mode == "aggregate"
        assert cost.est_rows is None and cost.est_bytes is None

    def test_incomplete_stats_never_prove(self):
        # the same stats that would prove a skip, marked incomplete:
        # estimates only, member keeps the global mode
        cost = model_for("SELECT count(m) GROUP BY app").member(
            store({"m": (0, 0.0, 0.0)}, complete=False)
        )
        assert cost.mode == "aggregate"
        assert "no proofs" in cost.reason


class TestEstimatesAgainstExactCounts:
    """Estimator checks against synthetic stores with known contents."""

    def wrapper(self, rows_per_exec: list[int], value=5.0, end=10.0):
        executions = []
        for index, rows in enumerate(rows_per_exec):
            executions.append(
                InMemoryExecution(
                    exec_id=str(index),
                    attrs={"numprocs": "4"},
                    results=[
                        PerformanceResult("m", "/A", "synthetic", 0.0, end, value)
                        for _ in range(rows)
                    ],
                )
            )
        return InMemoryWrapper("W", executions)

    def test_raw_estimate_equals_exact_rowcount(self):
        # no predicates: the raw estimate must be the exact row count
        wrapper = self.wrapper([3, 4, 5])
        cost = model_for("SELECT m").member(wrapper.get_stats())
        assert cost.mode == "raw"
        assert cost.est_rows == 12
        assert cost.est_bytes == 12 * RAW_RECORD_BYTES

    def test_empty_member_estimates_zero(self):
        wrapper = self.wrapper([])
        cost = model_for("SELECT m").member(wrapper.get_stats())
        assert cost.mode == "skip"
        assert (cost.est_rows, cost.est_bytes) == (0, 0)

    def test_single_row_member(self):
        wrapper = self.wrapper([1])
        cost = model_for("SELECT m").member(wrapper.get_stats())
        assert cost.mode == "raw" and cost.est_rows == 1

    def test_window_covering_all_rows_keeps_full_count(self):
        # every row lies inside [0, 10]; the window fraction must be 1
        wrapper = self.wrapper([4, 4], end=10.0)
        cost = model_for("SELECT m WHERE start >= 0.0 AND end <= 10.0").member(
            wrapper.get_stats()
        )
        assert cost.est_rows == 8

    def test_half_window_halves_the_estimate(self):
        wrapper = self.wrapper([10], end=10.0)
        cost = model_for("SELECT m WHERE end <= 5.0").member(wrapper.get_stats())
        assert cost.est_rows == 5

    def test_aggregate_estimate_counts_buckets_not_rows(self):
        wrapper = self.wrapper([100, 100])
        cost = model_for("SELECT sum(m) GROUP BY app").member(wrapper.get_stats())
        assert cost.mode == "aggregate"
        assert cost.est_rows == 2  # one bucket per execution, not 200
        assert cost.est_bytes == 2 * AGG_RECORD_BYTES

    def test_focus_grouping_multiplies_buckets_by_foci(self):
        executions = [
            InMemoryExecution(
                "0",
                {},
                [
                    PerformanceResult("m", focus, "synthetic", 0.0, 1.0, 1.0)
                    for focus in ("/A", "/B", "/C")
                ],
            )
        ]
        stats = InMemoryWrapper("W", executions).get_stats()
        cost = model_for("SELECT sum(m) GROUP BY focus").member(stats)
        assert cost.est_rows == 3

    def test_cost_based_plan_never_estimates_more_than_raw(self):
        # the aggregate estimate must undercut shipping raw rows
        wrapper = self.wrapper([50, 50])
        stats = wrapper.get_stats()
        raw = model_for("SELECT m").member(stats)
        agg = model_for("SELECT sum(m) GROUP BY app").member(stats)
        assert agg.est_bytes < raw.est_bytes


class TestPlannerIntegration:
    def catalog(self):
        return {"A": {"numprocs": ["4"]}, "B": {"numprocs": ["4"]}}

    def test_two_argument_plan_query_unchanged(self):
        plan = plan_query(parse_query("SELECT count(m) GROUP BY app"), self.catalog())
        assert plan.mode == "aggregate" and plan.skipped == ()
        assert all(member.cost is None for member in plan.members)
        assert plan.effective_mode == plan.mode

    def test_stats_split_members_by_mode(self):
        query = parse_query("SELECT count(m) WHERE value > 10.0 GROUP BY app")
        stats = {
            "A": store({"m": (5, 50.0, 90.0)}),  # vacuous -> aggregate
            "B": store({"m": (5, 0.0, 99.0)}),  # selective -> raw
        }
        plan = plan_query(query, self.catalog(), stats)
        assert plan.mode == "raw"  # global fallback unchanged
        by_app = {member.app: member for member in plan.members}
        assert by_app["A"].subqueries[0].mode == "aggregate"
        assert by_app["A"].subqueries[0].min_value is None
        assert by_app["B"].subqueries[0].mode == "raw"
        assert plan.effective_mode == "mixed"

    def test_skipped_member_lands_in_plan_skipped(self):
        query = parse_query("SELECT count(m) GROUP BY app")
        stats = {"A": store({"m": (5, 0.0, 9.0)}), "B": store({})}
        plan = plan_query(query, self.catalog(), stats)
        assert [member.app for member in plan.members] == ["A"]
        assert [skipped.app for skipped in plan.skipped] == ["B"]
        assert "skipped B" in plan.explain()

    def test_missing_stats_member_keeps_global_plan(self):
        query = parse_query("SELECT count(m) GROUP BY app")
        plan = plan_query(query, self.catalog(), {"A": store({"m": (5, 0.0, 9.0)}), "B": None})
        by_app = {member.app: member for member in plan.members}
        assert by_app["B"].cost.stats_missing is True
        assert by_app["B"].subqueries[0].mode == "aggregate"  # global mode
        assert plan.stats_degraded is True
        assert plan.skipped == ()  # never skip on missing stats
