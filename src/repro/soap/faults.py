"""SOAP fault representation and mapping to/from Python exceptions."""

from __future__ import annotations

from repro.xmlkit import Element, QName
from repro.soap.envelope import SOAP_ENV_NS

_FAULT = QName(SOAP_ENV_NS, "Fault")


class SoapFault(Exception):
    """A SOAP fault, raised client-side when a response carries one.

    ``code``: ``"Client"`` (caller error) or ``"Server"`` (service error).
    ``detail``: optional service-specific diagnostic string (e.g. the
    remote exception type).
    """

    def __init__(self, code: str, message: str, detail: str = "") -> None:
        super().__init__(f"{code}: {message}" + (f" [{detail}]" if detail else ""))
        self.code = code
        self.fault_message = message
        self.detail = detail

    def to_element(self) -> Element:
        el = Element(_FAULT)
        el.subelement("faultcode", f"soapenv:{self.code}")
        el.subelement("faultstring", self.fault_message)
        if self.detail:
            detail = el.subelement("detail")
            detail.subelement("exception", self.detail)
        return el

    @staticmethod
    def is_fault(el: Element) -> bool:
        return el.tag == _FAULT

    @staticmethod
    def from_element(el: Element) -> "SoapFault":
        if el.tag != _FAULT:
            raise ValueError(f"not a Fault element: {el.tag}")
        code_el = el.find("faultcode")
        msg_el = el.find("faultstring")
        code = (code_el.text() if code_el is not None else "Server").split(":")[-1]
        message = msg_el.text() if msg_el is not None else "unknown fault"
        detail = ""
        detail_el = el.find("detail")
        if detail_el is not None:
            exc_el = detail_el.find("exception")
            detail = exc_el.text() if exc_el is not None else detail_el.all_text()
        return SoapFault(code, message, detail)


def fault_from_exception(exc: BaseException, *, caller_error: bool = False) -> SoapFault:
    """Wrap a service-side exception as a fault.

    Faults raised by the service as :class:`SoapFault` pass through
    unchanged so services can signal Client-class faults deliberately.
    """
    if isinstance(exc, SoapFault):
        return exc
    code = "Client" if caller_error else "Server"
    return SoapFault(code, str(exc) or type(exc).__name__, detail=type(exc).__name__)
