"""Reactor and GridEnvironment teardown ordering.

The contract under test: ``Reactor.shutdown()`` is idempotent and safe
while a repeating task is mid-tick (the shutdown-while-sweeping race);
``AdmissionController.wait_idle`` observes the drain; and
``GridEnvironment.close()`` stops the sweeper, lets due reactor work
run, waits for in-flight dispatches, and only then stops the reactor —
so teardown can never yank the reactor out from under a dispatch about
to schedule deferred work on it.
"""

from __future__ import annotations

import threading
import time

from repro.ogsi import GridEnvironment
from repro.ogsi.dispatch import AdmissionController
from repro.simnet.reactor import Reactor

from tests.test_dispatch import deploy_echo


class TestReactorShutdown:
    def test_double_shutdown_is_idempotent(self):
        reactor = Reactor("twice")
        seen: list[int] = []
        reactor.call_soon(seen.append, 1)
        assert reactor.drain(timeout=5.0)
        reactor.shutdown()
        reactor.shutdown()  # second call must be a no-op, not an error
        assert reactor.is_shutdown
        assert seen == [1]

    def test_shutdown_while_repeating_task_runs(self):
        """A tick caught mid-flight by shutdown stops cleanly.

        The tick's reschedule lands after the queue is closed; that must
        end the repetition silently, not count a task failure.
        """
        reactor = Reactor("sweep-race")
        entered = threading.Event()
        release = threading.Event()

        def sweep():
            entered.set()
            release.wait(timeout=5.0)

        reactor.call_every(0.01, sweep)
        assert entered.wait(timeout=5.0)
        # release the tick shortly after shutdown starts joining, so the
        # reschedule runs against an already-closed queue
        threading.Timer(0.05, release.set).start()
        reactor.shutdown()
        assert reactor.is_shutdown
        assert reactor.task_failures == 0

    def test_schedule_after_shutdown_raises(self):
        reactor = Reactor("closed")
        reactor.shutdown()
        try:
            reactor.call_soon(lambda: None)
        except RuntimeError:
            pass
        else:  # pragma: no cover - defends the assertion below
            raise AssertionError("call_soon on a shut-down reactor must raise")


class TestWaitIdle:
    def test_idle_controller_returns_immediately(self):
        admission = AdmissionController(max_inflight=2)
        start = time.monotonic()
        assert admission.wait_idle(timeout=5.0)
        assert time.monotonic() - start < 1.0

    def test_waits_for_inflight_release(self):
        admission = AdmissionController(max_inflight=2)
        admission.acquire("c")
        done = threading.Event()

        def waiter():
            assert admission.wait_idle(timeout=5.0)
            done.set()

        thread = threading.Thread(target=waiter, daemon=True)
        thread.start()
        assert not done.wait(timeout=0.1)  # still held
        admission.release()
        assert done.wait(timeout=5.0)
        thread.join(timeout=2.0)

    def test_times_out_when_never_idle(self):
        admission = AdmissionController(max_inflight=1)
        admission.acquire("c")
        assert not admission.wait_idle(timeout=0.1)
        admission.release()


class TestEnvironmentClose:
    def test_close_drains_inflight_dispatch_before_reactor_stop(self):
        env = GridEnvironment()
        container = env.create_container("c:1")
        service, gsh = deploy_echo(container)
        stub = env.stub_for_handle(gsh, service.porttype)
        replies: list[str] = []

        thread = threading.Thread(
            target=lambda: replies.append(stub.block()), daemon=True
        )
        thread.start()
        assert service.entered.wait(timeout=5.0)
        # the dispatch is in flight; let it finish shortly after close
        # starts draining
        threading.Timer(0.1, service.resume.set).start()
        env.close(drain_timeout=5.0)
        thread.join(timeout=5.0)
        assert replies == ["unblocked"]
        assert container.admission.inflight == 0
        assert env._reactor is None

    def test_close_is_idempotent_and_stops_sweeper(self):
        env = GridEnvironment()
        env.create_container("c:1")
        ticks: list[float] = []
        env.reactor.call_every(0.01, lambda: ticks.append(time.monotonic()))
        env.start_sweeper(0.01)
        time.sleep(0.05)
        env.close()
        env.close()  # second close: no reactor left, still a no-op
        count = len(ticks)
        time.sleep(0.05)
        assert len(ticks) == count  # nothing runs after close
        assert env._reactor is None

    def test_close_then_reactor_property_restarts_fresh(self):
        env = GridEnvironment()
        first = env.reactor
        env.close()
        second = env.reactor
        assert second is not first
        assert not second.is_shutdown
        env.close()
