"""The standard OGSA PortTypes (thesis Table 3).

Operation names match Table 3 verbatim (``FindServiceData``,
``CreateService``, ...).  Application-level PortTypes (Tables 1 and 2)
live with their implementations in :mod:`repro.core`.
"""

from __future__ import annotations

from repro.wsdl.porttype import Operation, Parameter, PortType

OGSI_NS = "http://www.gridforum.org/namespaces/2003/03/OGSI"

GRID_SERVICE_PORTTYPE = PortType(
    name="GridService",
    namespace=OGSI_NS,
    doc="The base interface implemented by every Grid service.",
    operations=(
        Operation(
            "FindServiceData",
            (Parameter("queryExpression", "xsd:string"),),
            "xsd:string",
            doc=(
                "Query a variety of information about the Grid service instance, "
                "including basic introspection information (handle, reference, "
                "primary key), richer per-interface information, and "
                "service-specific information. Extensible support for various "
                "query languages."
            ),
        ),
        Operation(
            "SetTerminationTime",
            (Parameter("terminationTime", "xsd:double"),),
            "xsd:double",
            doc="Set (and get) termination time for Grid service instance.",
        ),
        Operation(
            "Destroy",
            (),
            "void",
            doc="Terminate Grid service instance.",
        ),
    ),
)

NOTIFICATION_SOURCE_PORTTYPE = PortType(
    name="NotificationSource",
    namespace=OGSI_NS,
    doc="Subscription management for service-related event notifications.",
    operations=(
        Operation(
            "SubscribeToNotificationTopic",
            (
                Parameter("topic", "xsd:string"),
                Parameter("sinkHandle", "xsd:string"),
                Parameter("expirationTime", "xsd:double"),
            ),
            "xsd:string",
            doc=(
                "Subscribe to notifications of service-related events, based on "
                "message type and interest statement. Allows for delivery via "
                "third party messaging services."
            ),
        ),
        Operation(
            "UnsubscribeFromNotificationTopic",
            (Parameter("subscriptionId", "xsd:string"),),
            "void",
            doc="Cancel a notification subscription.",
        ),
    ),
)

NOTIFICATION_SINK_PORTTYPE = PortType(
    name="NotificationSink",
    namespace=OGSI_NS,
    doc="Receives asynchronous notification messages.",
    operations=(
        Operation(
            "DeliverNotification",
            (
                Parameter("topic", "xsd:string"),
                Parameter("message", "xsd:string"),
            ),
            "void",
            doc="Carry out asynchronous delivery of notification messages.",
        ),
    ),
)

REGISTRY_PORTTYPE = PortType(
    name="Registry",
    namespace=OGSI_NS,
    doc="Soft-state registration of Grid service handles.",
    operations=(
        Operation(
            "RegisterService",
            (
                Parameter("handle", "xsd:string"),
                Parameter("information", "xsd:string[]"),
                Parameter("lifetime", "xsd:double"),
            ),
            "void",
            doc="Conduct soft-state registration of Grid service handles.",
        ),
        Operation(
            "UnregisterService",
            (Parameter("handle", "xsd:string"),),
            "void",
            doc="Deregister a Grid service handle.",
        ),
        Operation(
            "FindServices",
            (Parameter("namePattern", "xsd:string"),),
            "xsd:string[]",
            doc="Return handles of registered services whose name matches a pattern.",
        ),
    ),
)

FACTORY_PORTTYPE = PortType(
    name="Factory",
    namespace=OGSI_NS,
    doc="Creates new Grid service instances.",
    operations=(
        Operation(
            "CreateService",
            (Parameter("creationParameters", "xsd:string[]"),),
            "xsd:string",
            doc="Create new Grid service instance.",
        ),
    ),
    extends=(GRID_SERVICE_PORTTYPE,),
)

HANDLE_MAP_PORTTYPE = PortType(
    name="HandleMap",
    namespace=OGSI_NS,
    doc="Resolves Grid Service Handles to Grid Service References.",
    operations=(
        Operation(
            "FindByHandle",
            (Parameter("handle", "xsd:string"),),
            "xsd:string",
            doc=(
                "Return Grid Service Reference currently associated with "
                "supplied Grid Service Handle."
            ),
        ),
    ),
)


def ogsi_porttype_table() -> list[tuple[str, str, str]]:
    """Rows of thesis Table 3: (PortType, Operation, Description)."""
    rows: list[tuple[str, str, str]] = []
    for porttype in (
        GRID_SERVICE_PORTTYPE,
        NOTIFICATION_SOURCE_PORTTYPE,
        NOTIFICATION_SINK_PORTTYPE,
        REGISTRY_PORTTYPE,
        FACTORY_PORTTYPE,
        HANDLE_MAP_PORTTYPE,
    ):
        for op in porttype.operations:
            rows.append((porttype.name, op.name, op.doc))
    return rows
