"""The tier-0 metadata answer path, end to end.

Tier 0 answers whole sub-queries from cached stats/sketches with zero
member round-trips; this file pins its contract: exact answers are
byte-identical to the naive fan-out, ineligible shapes and sketchless
members fall back per member, tier assignment is part of the plan-cache
key, ``explainPlan`` surfaces the tier per member, the client rejects
unknown query options, and — the coherence regression promised in
``test_fedquery_coherence`` — a ``data_updated`` racing a tier-0 answer
can never leave a stale result in the plan cache.
"""

from __future__ import annotations

import pytest

from repro.core.semantic import PerformanceResult
from repro.experiments.common import GridScale, build_grid, build_synthetic_grid
from repro.fedquery import QueryError
from repro.mapping.memory import InMemoryExecution, InMemoryWrapper

#: HPL publishes metric sketches, so this shape (aggregate-only select,
#: GROUP BY app, full window) answers wholly at tier 0
HPL_QUERY = "SELECT count(gflops), max(gflops) FROM HPL GROUP BY app"


@pytest.fixture()
def grid():
    grid = build_grid(GridScale.tiny())
    grid.deploy_federation()
    yield grid
    grid.cleanup()


def synthetic(values: dict[str, list[float]], metric: str = "m"):
    wrappers = {
        app: InMemoryWrapper(
            app,
            [
                InMemoryExecution(
                    "0",
                    {"numprocs": "4"},
                    [
                        PerformanceResult(metric, "/R", "synthetic", 0.0, 1.0, v)
                        for v in vals
                    ],
                )
            ],
        )
        for app, vals in values.items()
    }
    grid = build_synthetic_grid(wrappers)
    return grid, grid.deploy_federation()


class TestExactTier0:
    def test_matches_naive_with_zero_round_trips(self, grid):
        tier0 = grid.fed_engine.execute(HPL_QUERY)
        assert tier0.stats["calls"] == 0
        assert tier0.stats["tier0Members"] == 1
        assert tier0.stats["estimatedRoundTrips"] == 0
        assert tier0.plan.effective_mode == "tier0"
        assert grid.fed_engine.plan_modes["tier0"] == 1

        grid.fed_engine.tier0 = False
        grid.fed_engine.invalidate_cache()
        naive = grid.fed_engine.execute(HPL_QUERY)
        assert naive.stats["calls"] > 0
        # count/max answers are byte-identical to the real fan-out
        assert [r.pack() for r in tier0.rows] == [r.pack() for r in naive.rows]

    def test_vacuous_predicate_still_tier0(self, grid):
        result = grid.fed_engine.execute(
            "SELECT sum(gflops) FROM HPL WHERE value > -1.0 GROUP BY app"
        )
        assert result.stats["calls"] == 0
        assert result.plan.members[0].tier == "tier0-stats"

    def test_unsatisfiable_predicate_exact_empty_answer(self):
        grid, engine = synthetic({"A": [1.0, 2.0, 3.0]})
        result = engine.execute("SELECT count(m) WHERE value > 1000.0 GROUP BY app")
        # the stats prove the member away before tier 0 even looks at it
        # (a skip is just the degenerate tier-0 answer): zero round-trips
        # either way, and the exact empty result
        assert result.stats["calls"] == 0
        assert result.plan.effective_mode in ("tier0", "skip")
        assert result.rows == []
        grid.cleanup()

    def test_extremum_proof_answers_filtered_max(self):
        """max is exact at tier 0 when the global maximum itself matches
        the predicate, even though the count window is only bounded."""
        grid, engine = synthetic({"A": [float(v) for v in range(1, 11)]})
        result = engine.execute("SELECT max(m) WHERE value > 5.0 GROUP BY app")
        assert result.stats["calls"] == 0
        assert result.plan.members[0].tier == "tier0-stats"
        assert result.rows[0]["max(m)"] == 10.0
        grid.cleanup()

    def test_inexact_window_falls_back_in_exact_mode(self):
        """A straddling predicate makes count inexact from metadata, so
        exact mode must fan out (only approx mode may answer it)."""
        grid, engine = synthetic({"A": [float(v) for v in range(1, 101)]})
        result = engine.execute("SELECT count(m) WHERE value > 50.0 GROUP BY app")
        assert result.stats["calls"] > 0
        assert not result.plan.members[0].is_tier0
        assert result.rows[0]["count(m)"] == 50
        grid.cleanup()

    def test_attribute_group_key_disqualifies_tier0(self, grid):
        result = grid.fed_engine.execute(
            "SELECT count(gflops) FROM HPL GROUP BY numprocs"
        )
        assert result.stats["tier0Members"] == 0
        assert result.stats["calls"] > 0


class TestFallbacks:
    def test_sketchless_member_makes_a_mixed_plan(self):
        """A member publishing stats but no metric sketches answers
        through push-down while its sketched peer answers at tier 0 —
        the fallback is per member, not whole-query."""
        import dataclasses

        a = InMemoryWrapper(
            "A",
            [
                InMemoryExecution(
                    "0", {},
                    [
                        PerformanceResult("m", "/R", "synthetic", 0.0, 1.0, v)
                        for v in (1.0, 2.0, 3.0)
                    ],
                )
            ],
        )
        b = InMemoryWrapper(
            "B",
            [
                InMemoryExecution(
                    "0", {},
                    [
                        PerformanceResult("m", "/R", "synthetic", 0.0, 1.0, v)
                        for v in (10.0, 20.0)
                    ],
                )
            ],
        )
        real_stats = b.get_stats
        b.get_stats = lambda: dataclasses.replace(real_stats(), sketches=())
        grid = build_synthetic_grid({"A": a, "B": b})
        engine = grid.deploy_federation()
        result = engine.execute("SELECT count(m), sum(m) GROUP BY app")
        tiers = {m.app: m.tier for m in result.plan.members}
        assert tiers == {"A": "tier0-stats", "B": "pushdown"}
        assert result.plan.effective_mode == "mixed"
        assert result.stats["tier0Members"] == 1
        assert result.stats["calls"] > 0  # B really fanned out
        by_app = {row["app"]: row for row in result.rows}
        assert (by_app["A"]["count(m)"], by_app["A"]["sum(m)"]) == (3, 6.0)
        assert (by_app["B"]["count(m)"], by_app["B"]["sum(m)"]) == (2, 30.0)
        grid.cleanup()

    def test_smg98_derived_metrics_stay_below_tier0(self, grid):
        """SMG98's metrics are derived at query time, so it deliberately
        publishes no sketches — its queries keep the exact paths."""
        result = grid.fed_engine.execute(
            "SELECT count(time_spent) FROM SMG98 GROUP BY app"
        )
        assert result.stats["tier0Members"] == 0
        assert result.stats["calls"] > 0
        assert result.rows and result.rows[0]["count(time_spent)"] > 0

    def test_tier0_disabled_engine_never_uses_it(self, grid):
        grid.fed_engine.tier0 = False
        result = grid.fed_engine.execute(HPL_QUERY)
        assert result.stats["tier0Members"] == 0
        assert result.stats["calls"] > 0
        assert grid.fed_engine.plan_modes["tier0"] == 0

    def test_cost_model_off_means_no_tier0(self, grid):
        """Without getStats there is no metadata to answer from."""
        grid.fed_engine.cost_based = False
        result = grid.fed_engine.execute(HPL_QUERY)
        assert result.stats["tier0Members"] == 0
        assert result.stats["calls"] > 0


class TestPlanCacheKeys:
    def test_fingerprint_distinguishes_tiers(self, grid):
        engine = grid.fed_engine
        tier0_plan = engine._plan(engine._parse(HPL_QUERY))
        fanout_plan = engine._plan(engine._parse(HPL_QUERY), allow_tier0=False)
        assert tier0_plan.fingerprint != fanout_plan.fingerprint
        assert ";tier0[HPL=tier0-stats]" in tier0_plan.fingerprint

    def test_approx_and_exact_results_never_collide(self, grid):
        engine = grid.fed_engine
        exact = engine.execute(HPL_QUERY)
        assert exact.cached is False and exact.approx is False
        # same text, approx mode: a fresh computation, not the exact hit
        approx = engine.execute(HPL_QUERY, approx=True)
        assert approx.cached is False and approx.approx is True
        assert len(approx.error_bounds) == len(approx.rows)
        # each mode then hits its own entry, bounds intact
        hot_exact = engine.execute(HPL_QUERY)
        assert hot_exact.cached is True and hot_exact.error_bounds == []
        hot_approx = engine.execute(HPL_QUERY, approx=True)
        assert hot_approx.cached is True
        assert hot_approx.error_bounds == approx.error_bounds

    def test_tolerance_is_part_of_the_key(self, grid):
        engine = grid.fed_engine
        engine.execute(HPL_QUERY, approx=True)
        other = engine.execute(HPL_QUERY, approx=True, tolerance=0.5)
        assert other.cached is False


class TestExplainSurfacesTiers:
    def test_explain_plan_shows_tier_and_round_trips(self, grid):
        lines = grid.fed_engine.explain_plan(HPL_QUERY)
        text = "\n".join(lines)
        assert "member HPL: tier=tier0-stats" in text
        assert "answered from cached stats/sketches (0 round-trips)" in text
        assert any(line.startswith("estimated round-trips: 0") for line in lines)

    def test_explain_plan_shows_fallback_tier(self, grid):
        lines = grid.fed_engine.explain_plan(
            "SELECT count(time_spent) FROM SMG98 GROUP BY app"
        )
        assert any("member SMG98: tier=pushdown" in line for line in lines)

    def test_estimated_vs_actual_round_trips(self, grid):
        result = grid.fed_engine.execute(HPL_QUERY)
        assert result.stats["estimatedRoundTrips"] == result.stats["calls"] == 0


class TestClientOptions:
    def test_unknown_option_rejected(self, grid):
        with pytest.raises(QueryError, match=r"unknown query option\(s\) \['frobnicate'\]"):
            grid.client.query(HPL_QUERY, frobnicate=True)

    def test_tolerance_requires_approx(self, grid):
        with pytest.raises(QueryError, match="tolerance requires approx=True"):
            grid.client.query(HPL_QUERY, tolerance=0.1)

    def test_exact_query_returns_plain_rows(self, grid):
        rows = grid.client.query(HPL_QUERY)
        assert rows and not hasattr(rows, "error_bounds")

    def test_approx_query_returns_bounds_over_soap(self, grid):
        rows = grid.client.query(HPL_QUERY, approx=True, tolerance=1.0)
        assert rows.approx is True
        assert len(rows.error_bounds) == len(rows)
        assert all(isinstance(b, dict) for b in rows.error_bounds)


class TestTier0CoherenceRace:
    """The tier-0 variant of the insert-after-invalidate race (see
    TestInsertAfterInvalidateRace in test_fedquery_coherence): the store
    updates *after* the generation snapshot but before the tier-0 answer
    is memoized.  The wildcard (app, "*") dependency plus the snapshot
    comparison must discard the stale answer, and the next query must
    answer from refreshed stats — tier 0 can never serve stale data."""

    def test_update_between_stats_read_and_answer_discards(self, grid, monkeypatch):
        engine = grid.fed_engine
        exec_id = grid.hpl_site.wrapper.get_all_exec_ids()[0]
        service = grid.execution_service("HPL", exec_id)
        assert service is not None
        original_plan = engine._plan

        def racy_plan(query, **kwargs):
            plan = original_plan(query, **kwargs)
            # the store mutates while the tier-0 answer is being folded
            grid.hpl_site.wrapper.conn.execute(
                "UPDATE hpl_runs SET gflops = ? WHERE runid = ?",
                [99999.0, int(exec_id)],
            )
            service.data_updated("mid-tier0")
            return plan

        monkeypatch.setattr(engine, "_plan", racy_plan)
        stale = engine.execute(HPL_QUERY)
        monkeypatch.setattr(engine, "_plan", original_plan)
        # the racy run answered at tier 0 from the pre-update stats...
        assert stale.stats["calls"] == 0
        assert stale.rows[0]["max(gflops)"] != 99999.0
        # ...but was discarded instead of cached
        assert engine.coherence_stats()["staleDiscards"] == 1
        fresh = engine.execute(HPL_QUERY)
        assert fresh.cached is False
        assert fresh.stats["calls"] == 0  # still tier 0, on fresh stats
        assert fresh.rows[0]["max(gflops)"] == 99999.0
        # and the fresh answer memoizes normally
        assert engine.execute(HPL_QUERY).cached is True

    def test_update_after_cached_tier0_answer_invalidates(self, grid):
        engine = grid.fed_engine
        engine.execute(HPL_QUERY)
        assert engine.execute(HPL_QUERY).cached is True
        exec_id = grid.hpl_site.wrapper.get_all_exec_ids()[0]
        service = grid.execution_service("HPL", exec_id)
        grid.hpl_site.wrapper.conn.execute(
            "UPDATE hpl_runs SET gflops = ? WHERE runid = ?",
            [88888.0, int(exec_id)],
        )
        assert service.data_updated("recalibrated") == 1
        fresh = engine.execute(HPL_QUERY)
        assert fresh.cached is False
        assert fresh.rows[0]["max(gflops)"] == 88888.0
