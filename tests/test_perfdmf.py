"""Tests for the PerfDMF profile store and its wrapper (§2.4)."""

import pytest

from repro.core import PPerfGridClient, PPerfGridSite, SiteConfig, compare_executions
from repro.core.semantic import UNDEFINED_TYPE
from repro.datastores.perfdmf import PERFDMF_METRICS, profile_from_trace
from repro.mapping import MappingError, PerfDmfWrapper, Smg98RdbmsWrapper
from repro.ogsi import GridEnvironment


@pytest.fixture(scope="module")
def profile(smg98_dataset):
    return profile_from_trace(smg98_dataset)


@pytest.fixture(scope="module")
def perfdmf_db(profile):
    return profile.to_database()


@pytest.fixture(scope="module")
def wrapper(perfdmf_db):
    return PerfDmfWrapper(perfdmf_db)


class TestProfileDerivation:
    def test_one_trial_per_execution(self, profile, smg98_dataset):
        assert len(profile.trials) == smg98_dataset.num_executions

    def test_metrics_per_trial(self, profile, smg98_dataset):
        assert len(profile.metrics) == smg98_dataset.num_executions * len(PERFDMF_METRICS)

    def test_event_totals_match_trace(self, profile, smg98_dataset):
        # Sum of all TIME events == sum of all interval durations.
        time_ids = {m["metric_id"] for m in profile.metrics if m["name"] == "TIME"}
        time_sum = sum(
            e["exclusive_value"] for e in profile.interval_events if e["metric_id"] in time_ids
        )
        expected = sum(i["end_ts"] - i["start_ts"] for i in smg98_dataset.intervals)
        assert time_sum == pytest.approx(expected, rel=1e-9)

    def test_call_counts_match_trace(self, profile, smg98_dataset):
        calls_ids = {m["metric_id"] for m in profile.metrics if m["name"] == "CALLS"}
        calls = sum(
            e["num_calls"] for e in profile.interval_events if e["metric_id"] in calls_ids
        )
        assert calls == len(smg98_dataset.intervals)


class TestPerfDmfWrapper:
    def test_app_info(self, wrapper, smg98_dataset):
        info = dict(wrapper.get_app_info())
        assert info["name"] == "SMG98"
        assert int(info["executions"]) == smg98_dataset.num_executions

    def test_exec_ids(self, wrapper, smg98_dataset):
        assert wrapper.get_all_exec_ids() == [
            str(e["execid"]) for e in smg98_dataset.executions
        ]

    def test_attribute_query(self, wrapper, smg98_dataset):
        np0 = smg98_dataset.executions[0]["numprocs"]
        ids = wrapper.get_exec_ids("node_count", str(np0))
        assert "1" in ids

    def test_foci_are_aggregated_functions(self, wrapper):
        execution = wrapper.execution("1")
        foci = execution.get_foci()
        assert all(f.startswith("/Code/") for f in foci)
        assert "/Code/MPI/MPI_Irecv" in foci

    def test_profile_pr_is_single_total(self, wrapper):
        execution = wrapper.execution("1")
        results = execution.get_pr(
            "time_spent", ["/Code/MPI/MPI_Irecv"], 0.0, -1.0, UNDEFINED_TYPE
        )
        assert len(results) == 1
        assert results[0].result_type == "perfdmf"

    def test_subrange_query_returns_nothing(self, wrapper):
        execution = wrapper.execution("1")
        t0, t1 = execution.get_time_start_end()
        assert (
            execution.get_pr("time_spent", ["/Code/MPI/MPI_Irecv"], 0.0, t1 / 2, UNDEFINED_TYPE)
            == []
        )

    def test_unknown_metric_and_focus(self, wrapper):
        execution = wrapper.execution("1")
        with pytest.raises(MappingError):
            execution.get_pr("watts", ["/Code/MPI/MPI_Irecv"], 0, -1, UNDEFINED_TYPE)
        with pytest.raises(MappingError):
            execution.get_pr("time_spent", ["/Process/0"], 0, -1, UNDEFINED_TYPE)

    def test_unknown_application_id(self, perfdmf_db):
        with pytest.raises(MappingError):
            PerfDmfWrapper(perfdmf_db, app_id=99)


class TestTraceProfileParity:
    """The profile store must agree with the trace store it was derived from."""

    def test_time_spent_totals_agree(self, smg98_db, perfdmf_db):
        trace = Smg98RdbmsWrapper(smg98_db).execution("1")
        profile = PerfDmfWrapper(perfdmf_db).execution("1")
        focus = "/Code/MPI/MPI_Waitall"
        trace_total = sum(
            pr.value
            for pr in trace.get_pr("time_spent", [focus], 0.0, -1.0, UNDEFINED_TYPE)
        )
        profile_total = profile.get_pr("time_spent", [focus], 0.0, -1.0, UNDEFINED_TYPE)[0].value
        assert profile_total == pytest.approx(trace_total, rel=1e-9)

    def test_func_calls_agree(self, smg98_db, perfdmf_db):
        trace = Smg98RdbmsWrapper(smg98_db).execution("2")
        profile = PerfDmfWrapper(perfdmf_db).execution("2")
        focus = "/Code/SMG/smg_relax"
        trace_calls = sum(
            pr.value
            for pr in trace.get_pr("func_calls", [focus], 0.0, -1.0, UNDEFINED_TYPE)
        )
        profile_calls = profile.get_pr("func_calls", [focus], 0.0, -1.0, UNDEFINED_TYPE)[0].value
        assert profile_calls == trace_calls

    def test_federated_cross_granularity_comparison(self, smg98_db, perfdmf_db):
        """The §2.4 scenario end to end: PerfDMF + Vampir trace, one client."""
        env = GridEnvironment()
        trace_site = PPerfGridSite(
            env, SiteConfig("trace:1", "SMG98"), Smg98RdbmsWrapper(smg98_db)
        )
        profile_site = PPerfGridSite(
            env, SiteConfig("profile:1", "SMG98-PerfDMF"), PerfDmfWrapper(perfdmf_db)
        )
        client = PPerfGridClient(env)
        trace_app = client.bind(trace_site.factory_url, "SMG98")
        profile_app = client.bind(profile_site.factory_url, "SMG98-PerfDMF")
        trace_exec = trace_app.all_executions()[0]
        profile_exec = profile_app.all_executions()[0]
        comparison = compare_executions(
            trace_exec, profile_exec, "time_spent", ["/Code/MPI/MPI_Isend"]
        )
        row = comparison.rows[0]
        # Same run through two tools: the aggregated values coincide.
        assert row.ratio == pytest.approx(1.0, rel=1e-9)
