"""Tests for GSHs, service data, the GridService base, factories,
registries, handle maps, and the container dispatch path."""

import math

import pytest

from repro.ogsi import (
    FACTORY_PORTTYPE,
    GRID_SERVICE_PORTTYPE,
    HANDLE_MAP_PORTTYPE,
    REGISTRY_PORTTYPE,
    ContainerError,
    FactoryService,
    GridEnvironment,
    GridServiceBase,
    GridServiceHandle,
    GshError,
    HandleMapService,
    RegistryService,
    ServiceDataSet,
    ogsi_porttype_table,
)
from repro.simnet.clock import VirtualClock
from repro.soap import SoapFault
from repro.wsdl import Operation, Parameter, PortType
from repro.xmlkit import parse


class TestGsh:
    def test_parse_and_roundtrip(self):
        gsh = GridServiceHandle.parse("ppg://host:8080/services/App/instances/3")
        assert gsh.authority == "host:8080"
        assert gsh.path == "services/App/instances/3"
        assert gsh.url() == "ppg://host:8080/services/App/instances/3"
        assert gsh.endpoint_url() == "http://host:8080/services/App/instances/3"

    def test_instance_id_extraction(self):
        gsh = GridServiceHandle.parse("ppg://h:1/services/App/instances/42")
        assert gsh.instance_id == "42"
        assert gsh.base_service == "services/App"

    def test_non_instance_handle(self):
        gsh = GridServiceHandle.parse("ppg://h:1/services/App")
        assert gsh.instance_id is None
        assert gsh.base_service == "services/App"

    @pytest.mark.parametrize(
        "bad",
        ["http://h:1/x", "ppg://h:1", "ppg:///x", "ppg://h:1//x", "ppg://h:1/x/"],
    )
    def test_invalid_handles(self, bad):
        with pytest.raises(GshError):
            GridServiceHandle.parse(bad)
        assert not GridServiceHandle.is_valid(bad)


class TestServiceData:
    def test_set_get_names(self):
        sds = ServiceDataSet()
        sds.set("single", "value")
        sds.set("multi", ["a", "b"])
        assert sds.get("single").values == ["value"]
        assert sds.names() == ["multi", "single"]

    def test_name_query(self):
        sds = ServiceDataSet()
        sds.set("metrics", ["gflops", "runtimesec"])
        xml = sds.query("metrics")
        root = parse(xml).root
        sde = root.find("serviceDataElement")
        assert sde.get("name") == "metrics"
        assert [v.text() for v in sde.findall("value")] == ["gflops", "runtimesec"]

    def test_name_prefix_query(self):
        sds = ServiceDataSet()
        sds.set("x", "1")
        assert "serviceDataElement" in sds.query("name:x")

    def test_missing_name_gives_empty_result(self):
        xml = ServiceDataSet().query("ghost")
        assert parse(xml).root.children == []

    def test_xpath_query(self):
        sds = ServiceDataSet()
        sds.set("foci", ["/Code/MPI/MPI_Send", "/Process/0"])
        xml = sds.query("xpath://serviceDataElement[@name='foci']/value")
        values = [el.text() for el in parse(xml).root.iter_elements()]
        assert values == ["/Code/MPI/MPI_Send", "/Process/0"]

    def test_bad_xpath_raises(self):
        with pytest.raises(ValueError):
            ServiceDataSet().query("xpath:[[[")

    def test_remove(self):
        sds = ServiceDataSet()
        sds.set("x", "1")
        sds.remove("x")
        assert sds.get("x") is None


ECHO_PT = PortType(
    "Echo",
    "urn:echo",
    (Operation("echo", (Parameter("text", "xsd:string"),), "xsd:string"),),
    extends=(GRID_SERVICE_PORTTYPE,),
)


class EchoService(GridServiceBase):
    porttype = ECHO_PT

    def echo(self, text: str) -> str:
        self.require_active()
        return "echo:" + text


class BrokenService(GridServiceBase):
    porttype = PortType(
        "Broken", "urn:b", (Operation("declared_only", (), "void"),)
    )


@pytest.fixture()
def env():
    return GridEnvironment(clock=VirtualClock())


@pytest.fixture()
def container(env):
    return env.create_container("site:8080")


class TestContainer:
    def test_deploy_and_call(self, env, container):
        gsh = container.deploy("services/echo", EchoService())
        stub = env.stub_for_handle(gsh, ECHO_PT)
        assert stub.echo("x") == "echo:x"

    def test_duplicate_path_rejected(self, container):
        container.deploy("services/echo", EchoService())
        with pytest.raises(ContainerError):
            container.deploy("services/echo", EchoService())

    def test_duplicate_authority_rejected(self, env):
        with pytest.raises(ContainerError):
            env.create_container("site:8080")
            env.create_container("site:8080")

    def test_introspection_sdes_seeded(self, env, container):
        service = EchoService()
        gsh = container.deploy("services/echo", service)
        assert service.service_data.get("handle").values == [gsh.url()]
        assert "Echo" in service.service_data.get("interfaces").values
        assert "GridService" in service.service_data.get("interfaces").values

    def test_unknown_operation_is_client_fault(self, env, container):
        from repro.soap.rpc import decode_response, encode_request

        container.deploy("services/echo", EchoService())
        # Craft a request the stub would refuse, to exercise the server check.
        request = encode_request("urn:echo", "frobnicate", [])
        response = container.handle_request("services/echo", request)
        with pytest.raises(SoapFault) as exc_info:
            decode_response(response)
        assert exc_info.value.code == "Client"
        # Wrong arity crafted directly is also a client fault.
        request = encode_request("urn:echo", "echo", [])
        with pytest.raises(SoapFault) as exc_info:
            decode_response(container.handle_request("services/echo", request))
        assert exc_info.value.code == "Client"

    def test_declared_but_unimplemented_is_server_fault(self, env, container):
        gsh = container.deploy("services/broken", BrokenService())
        stub = env.stub_for_handle(gsh, BrokenService.porttype)
        with pytest.raises(SoapFault) as exc_info:
            stub.declared_only()
        assert exc_info.value.code == "Server"

    def test_service_exception_becomes_server_fault(self, env, container):
        class Exploding(EchoService):
            def echo(self, text):
                raise RuntimeError("kaboom")

        gsh = container.deploy("services/boom", Exploding())
        stub = env.stub_for_handle(gsh, ECHO_PT)
        with pytest.raises(SoapFault) as exc_info:
            stub.echo("x")
        assert exc_info.value.code == "Server"
        assert "kaboom" in exc_info.value.fault_message

    def test_garbage_request_is_fault_bytes(self, container):
        response = container.handle_request("services/echo", b"not xml at all")
        assert b"Fault" in response

    def test_grid_service_ops_on_any_service(self, env, container):
        gsh = container.deploy("services/echo", EchoService())
        stub = env.stub_for_handle(gsh, GRID_SERVICE_PORTTYPE)
        xml = stub.FindServiceData("handle")
        assert gsh.url() in xml


class TestLifetime:
    def test_destroy_removes_service(self, env, container):
        gsh = container.deploy("services/echo", EchoService())
        stub = env.stub_for_handle(gsh, ECHO_PT)
        stub.Destroy()
        assert not container.has_service(gsh)
        with pytest.raises(SoapFault):
            stub.echo("x")

    def test_set_termination_time(self, env, container):
        service = EchoService()
        container.deploy("services/echo", service)
        assert service.SetTerminationTime(100.0) == 100.0
        assert service.termination_time == 100.0
        assert service.SetTerminationTime(0.0) == 0.0
        assert math.isinf(service.termination_time)

    def test_sweep_expired(self, env, container):
        clock = env.clock
        service = EchoService()
        gsh = container.deploy("services/echo", service)
        service.SetTerminationTime(50.0)
        clock.advance(49.0)
        assert container.sweep_expired() == 0
        clock.advance(2.0)
        assert container.sweep_expired() == 1
        assert not container.has_service(gsh)

    def test_factory_grants_lifetime(self, env, container):
        factory = FactoryService(lambda params: EchoService(), instance_lifetime=10.0)
        container.deploy("services/factory", factory)
        stub = env.stub_for_handle("ppg://site:8080/services/factory", FACTORY_PORTTYPE)
        gsh = stub.CreateService([])
        instance = container.service_at(GridServiceHandle.parse(gsh).path)
        assert instance.termination_time == pytest.approx(env.clock.now() + 10.0)


class TestFactory:
    def test_instances_get_unique_paths(self, env, container):
        factory = FactoryService(lambda params: EchoService())
        container.deploy("services/factory", factory)
        stub = env.stub_for_handle("ppg://site:8080/services/factory", FACTORY_PORTTYPE)
        g1, g2 = stub.CreateService([]), stub.CreateService([])
        assert g1 != g2
        assert factory.created_count == 2
        assert factory.service_data.get("instancesCreated").values == ["2"]

    def test_creation_parameters_forwarded(self, env, container):
        seen = []

        def builder(params):
            seen.append(params)
            return EchoService()

        container.deploy("services/factory", FactoryService(builder))
        stub = env.stub_for_handle("ppg://site:8080/services/factory", FACTORY_PORTTYPE)
        stub.CreateService(["exec-42"])
        assert seen == [["exec-42"]]

    def test_undeployed_factory_rejects(self):
        factory = FactoryService(lambda params: EchoService())
        with pytest.raises(RuntimeError):
            factory.CreateService([])


class TestRegistry:
    def test_register_find_unregister(self, env, container):
        gsh = container.deploy("services/registry", RegistryService())
        stub = env.stub_for_handle(gsh, REGISTRY_PORTTYPE)
        stub.RegisterService("ppg://a:1/x", ["ServiceA"], 0.0)
        stub.RegisterService("ppg://a:1/y", ["OtherB"], 0.0)
        assert stub.FindServices("Service%") == ["ppg://a:1/x"]
        assert len(stub.FindServices("%")) == 2
        stub.UnregisterService("ppg://a:1/x")
        assert stub.FindServices("Service%") == []

    def test_soft_state_expiry(self, env, container):
        registry = RegistryService()
        container.deploy("services/registry", registry)
        registry.RegisterService("ppg://a:1/x", ["A"], 10.0)
        env.clock.advance(11.0)
        assert registry.live_count() == 0

    def test_refresh_extends_lifetime(self, env, container):
        registry = RegistryService()
        container.deploy("services/registry", registry)
        registry.RegisterService("ppg://a:1/x", ["A"], 10.0)
        env.clock.advance(8.0)
        registry.RegisterService("ppg://a:1/x", ["A"], 10.0)
        env.clock.advance(8.0)
        assert registry.live_count() == 1

    def test_empty_handle_rejected(self, container):
        registry = RegistryService()
        container.deploy("services/registry", registry)
        with pytest.raises(ValueError):
            registry.RegisterService("", ["A"], 0.0)


class TestHandleMap:
    def test_resolves_live_service(self, env, container):
        gsh = container.deploy("services/echo", EchoService())
        hm_gsh = container.deploy("services/handlemap", HandleMapService(env))
        stub = env.stub_for_handle(hm_gsh, HANDLE_MAP_PORTTYPE)
        assert stub.FindByHandle(gsh.url()) == gsh.endpoint_url()

    def test_stale_handle_faults(self, env, container):
        hm_gsh = container.deploy("services/handlemap", HandleMapService(env))
        stub = env.stub_for_handle(hm_gsh, HANDLE_MAP_PORTTYPE)
        with pytest.raises(SoapFault):
            stub.FindByHandle("ppg://site:8080/services/ghost")


class TestPortTypeTable:
    def test_table3_rows_match_thesis(self):
        rows = ogsi_porttype_table()
        pairs = {(pt, op) for pt, op, _ in rows}
        for expected in [
            ("GridService", "FindServiceData"),
            ("GridService", "SetTerminationTime"),
            ("GridService", "Destroy"),
            ("NotificationSource", "SubscribeToNotificationTopic"),
            ("NotificationSink", "DeliverNotification"),
            ("Registry", "RegisterService"),
            ("Registry", "UnregisterService"),
            ("Factory", "CreateService"),
            ("HandleMap", "FindByHandle"),
        ]:
            assert expected in pairs
        assert all(doc for _, _, doc in rows)
