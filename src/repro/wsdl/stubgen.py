"""Dynamic client stubs — the client half of the Architecture Adapter.

``make_stub(porttype, endpoint, transport)`` returns an object whose
attributes are the PortType's operations.  Calling one encodes the
arguments to a SOAP request, sends the bytes through the transport,
decodes the response, and returns the native value — exactly the
marshalling/encoding/routing conversion the thesis describes (§4.5), and
the path timed as "total query time" in Table 4.
"""

from __future__ import annotations

from typing import Callable

from repro.simnet.transport import Transport
from repro.soap.encoding import SoapEncodingError
from repro.soap.rpc import decode_response, encode_request
from repro.wsdl.porttype import Operation, PortType
from repro.xmlkit import Element


class StubError(TypeError):
    """Raised for argument-count/type errors caught client-side."""


def _check_arg(op: Operation, index: int, value: object) -> None:
    param = op.parameters[index]
    base = param.wire_type[:-2] if param.wire_type.endswith("[]") else param.wire_type
    is_array = param.wire_type.endswith("[]")
    if value is None:
        return  # nils are representable for any type
    if is_array:
        if not isinstance(value, (list, tuple)):
            raise StubError(
                f"{op.name}: parameter {param.name!r} expects an array, got {type(value).__name__}"
            )
        return
    expectations: dict[str, type | tuple[type, ...]] = {
        "xsd:string": str,
        "xsd:int": int,
        "xsd:long": int,
        "xsd:double": (int, float),
        "xsd:boolean": bool,
    }
    expected = expectations.get(base)
    if expected is None:
        return  # anyType / struct: accept anything encodable
    if isinstance(value, bool) and expected is not bool:
        raise StubError(f"{op.name}: parameter {param.name!r} expects {base}, got bool")
    if not isinstance(value, expected):
        raise StubError(
            f"{op.name}: parameter {param.name!r} expects {base}, got {type(value).__name__}"
        )


class ClientStub:
    """A bound proxy for one service instance.

    Operations appear as callables; ``stub.getExecs("numprocs", "16")``
    performs the remote call.  ``headers_provider`` (optional) supplies
    SOAP header elements per call — used by the GSI security layer to
    sign requests.
    """

    def __init__(
        self,
        porttype: PortType,
        endpoint_url: str,
        transport: Transport,
        headers_provider: Callable[[str, bytes], list[Element]] | None = None,
    ) -> None:
        self._porttype = porttype
        self._endpoint = endpoint_url
        self._transport = transport
        self._headers_provider = headers_provider
        self._ops = {op.name: op for op in porttype.all_operations()}

    @property
    def endpoint_url(self) -> str:
        return self._endpoint

    @property
    def porttype(self) -> PortType:
        return self._porttype

    def operation_names(self) -> list[str]:
        return sorted(self._ops)

    def invoke(self, operation: str, *args: object) -> object:
        op = self._ops.get(operation)
        if op is None:
            raise StubError(
                f"PortType {self._porttype.name!r} has no operation {operation!r}"
            )
        if len(args) != len(op.parameters):
            raise StubError(
                f"{operation} takes {len(op.parameters)} argument(s), got {len(args)}"
            )
        for i, value in enumerate(args):
            _check_arg(op, i, value)
        headers: list[Element] = []
        if self._headers_provider is not None:
            # Providers may need the payload; give them a provisional encoding.
            provisional = encode_request(
                self._porttype.namespace, operation, list(args), op.param_names
            )
            headers = self._headers_provider(operation, provisional)
        request = encode_request(
            self._porttype.namespace, operation, list(args), op.param_names, headers=headers
        )
        response_bytes = self._transport.send(self._endpoint, request)
        response = decode_response(response_bytes)
        if response.operation != operation:
            raise SoapEncodingError(
                f"response for {response.operation!r} does not match request {operation!r}"
            )
        if op.returns == "void" and not response.is_void:
            raise SoapEncodingError(f"{operation} is void but returned a value")
        return response.value

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        if name not in self._ops:
            raise AttributeError(
                f"PortType {self._porttype.name!r} has no operation {name!r}"
            )

        def call(*args: object) -> object:
            return self.invoke(name, *args)

        call.__name__ = name
        return call

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ClientStub {self._porttype.name} @ {self._endpoint}>"


def make_stub(
    porttype: PortType,
    endpoint_url: str,
    transport: Transport,
    headers_provider: Callable[[str, bytes], list[Element]] | None = None,
) -> ClientStub:
    """Create a :class:`ClientStub` (mirrors WSDL2Java stub generation)."""
    return ClientStub(porttype, endpoint_url, transport, headers_provider)
