"""Tests for SOAP encoding, envelopes, faults, and RPC documents."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.soap import (
    SoapEncodingError,
    SoapFault,
    SoapMessageError,
    XsdType,
    build_envelope,
    decode_request,
    decode_response,
    decode_value,
    encode_request,
    encode_response,
    encode_value,
    parse_envelope,
    python_type_for,
    xsd_type_for,
)
from repro.soap.rpc import encode_fault
from repro.xmlkit import Element


class TestTypeInference:
    @pytest.mark.parametrize(
        "value, wire",
        [
            ("s", XsdType.STRING),
            (1, XsdType.INT),
            (2**40, XsdType.LONG),
            (-(2**40), XsdType.LONG),
            (1.5, XsdType.DOUBLE),
            (True, XsdType.BOOLEAN),
            (None, XsdType.ANY),
            ([1, 2], XsdType.ARRAY),
            ((1, 2), XsdType.ARRAY),
            ({"a": 1}, XsdType.STRUCT),
        ],
    )
    def test_xsd_type_for(self, value, wire):
        assert xsd_type_for(value) is wire

    def test_unencodable_type_raises(self):
        with pytest.raises(SoapEncodingError):
            xsd_type_for(object())

    def test_python_type_for_known(self):
        assert python_type_for("xsd:string") is str
        assert python_type_for("xsd:anyType") is None

    def test_python_type_for_unknown_raises(self):
        with pytest.raises(SoapEncodingError):
            python_type_for("xsd:nonsense")


class TestValueRoundtrip:
    @pytest.mark.parametrize(
        "value",
        [
            "hello",
            "",
            "with | pipes & <angles>",
            0,
            -42,
            2**40,
            1.5,
            -0.0,
            True,
            False,
            None,
            [],
            ["a", "b"],
            [1, None, "mixed"],
            {"name": "HPL", "count": 3, "nested": {"x": 1.0}},
            [["nested"], ["arrays", "here"]],
        ],
    )
    def test_roundtrip(self, value):
        decoded = decode_value(encode_value("v", value))
        if isinstance(value, tuple):
            value = list(value)
        assert decoded == value

    def test_bool_not_decoded_as_int(self):
        assert decode_value(encode_value("v", True)) is True

    def test_missing_xsi_type_raises(self):
        with pytest.raises(SoapEncodingError):
            decode_value(Element("v", children=["1"]))

    def test_bad_literals_raise(self):
        el = encode_value("v", 1)
        el.children = ["not-an-int"]
        with pytest.raises(SoapEncodingError):
            decode_value(el)

    def test_struct_key_must_be_string(self):
        with pytest.raises(SoapEncodingError):
            encode_value("v", {1: "x"})

    @given(st.lists(st.text(max_size=30), max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_string_array_roundtrip_property(self, values):
        assert decode_value(encode_value("v", values)) == values

    @given(
        st.recursive(
            st.one_of(
                st.none(),
                st.booleans(),
                st.integers(min_value=-(2**60), max_value=2**60),
                st.floats(allow_nan=False, allow_infinity=False),
                st.text(max_size=20),
            ),
            lambda inner: st.one_of(
                st.lists(inner, max_size=4),
                st.dictionaries(
                    st.from_regex(r"[a-z][a-z0-9]{0,6}", fullmatch=True), inner, max_size=4
                ),
            ),
            max_leaves=12,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_any_value_roundtrip_property(self, value):
        assert decode_value(encode_value("v", value)) == value


class TestEnvelope:
    def test_roundtrip_with_headers(self):
        header = Element("token", children=["abc"])
        env = build_envelope(Element("body-entry"), headers=[header])
        parsed = parse_envelope(env.to_bytes())
        assert len(parsed.headers) == 1
        assert parsed.headers[0].text() == "abc"
        assert parsed.first_body_entry().tag.local == "body-entry"

    def test_empty_body_raises_on_access(self):
        from repro.soap.envelope import SoapEnvelope

        env = SoapEnvelope()
        with pytest.raises(SoapMessageError):
            env.first_body_entry()

    def test_non_envelope_root_rejected(self):
        with pytest.raises(SoapMessageError):
            parse_envelope(b"<not-an-envelope/>")

    def test_malformed_xml_rejected(self):
        with pytest.raises(SoapMessageError):
            parse_envelope(b"<oops")


class TestRpc:
    def test_request_roundtrip(self):
        data = encode_request("urn:ppg", "getExecs", ["numprocs", "16"], ["attribute", "value"])
        req = decode_request(data)
        assert req.namespace == "urn:ppg"
        assert req.operation == "getExecs"
        assert req.params == ["numprocs", "16"]

    def test_request_param_name_count_mismatch(self):
        with pytest.raises(ValueError):
            encode_request("urn:x", "op", [1, 2], ["only-one"])

    def test_response_roundtrip(self):
        data = encode_response("urn:ppg", "getExecs", ["g1", "g2"])
        resp = decode_response(data)
        assert resp.operation == "getExecs"
        assert resp.value == ["g1", "g2"]
        assert not resp.is_void

    def test_void_response(self):
        data = encode_response("urn:ppg", "Destroy", None, is_void=True)
        resp = decode_response(data)
        assert resp.is_void and resp.value is None

    def test_non_response_entry_rejected(self):
        data = encode_request("urn:x", "op", [])
        with pytest.raises(SoapMessageError):
            decode_response(data)

    def test_fault_raises_client_side(self):
        data = encode_fault(SoapFault("Client", "no such op", "KeyError"))
        with pytest.raises(SoapFault) as exc_info:
            decode_response(data)
        assert exc_info.value.code == "Client"
        assert exc_info.value.fault_message == "no such op"
        assert exc_info.value.detail == "KeyError"


class TestFaults:
    def test_fault_element_roundtrip(self):
        fault = SoapFault("Server", "boom", "RuntimeError")
        parsed = SoapFault.from_element(fault.to_element())
        assert parsed.code == "Server"
        assert parsed.fault_message == "boom"
        assert parsed.detail == "RuntimeError"

    def test_from_exception_wraps(self):
        from repro.soap import fault_from_exception

        fault = fault_from_exception(ValueError("bad"), caller_error=True)
        assert fault.code == "Client"
        assert fault.detail == "ValueError"

    def test_from_exception_passes_faults_through(self):
        from repro.soap import fault_from_exception

        original = SoapFault("Client", "x")
        assert fault_from_exception(original) is original

    def test_is_fault(self):
        assert SoapFault.is_fault(SoapFault("Client", "x").to_element())
        assert not SoapFault.is_fault(Element("x"))
