#!/usr/bin/env python
"""Federated queries: one declarative question, the whole federation.

Builds the three-source grid (HPL + SMG98 in RDBMSs, PRESTA-RMA in
text files), deploys the FederatedQuery Grid service over it, and runs
queries through the plain client API — predicates push down into the
stores (real SQL in the RDBMS wrappers), sub-queries fan out in
parallel, and repeated queries answer from the plan cache.

Run: ``python examples/fedquery_demo.py``
"""

import time

from repro.experiments.common import GridScale, build_grid


def show(title: str, rows) -> None:
    print(f"\n== {title}")
    for row in rows:
        print("  " + "  ".join(f"{c}={v}" for c, v in row.as_dict().items()))


def main() -> None:
    grid = build_grid(GridScale.tiny())
    grid.deploy_federation()

    # One aggregate question over one member: how does SMG98's
    # time-in-MPI change with process count?
    text = (
        "SELECT mean(time_spent), count(time_spent) FROM SMG98 "
        "WHERE numprocs >= 8 GROUP BY numprocs ORDER BY numprocs"
    )
    show(text, grid.client.query(text))

    # The plan, without executing: what pushed down where, who was pruned.
    print("\n== EXPLAIN")
    print(grid.client.explain_query(text))

    # A federation-wide question — no FROM clause means every published
    # Application; members that don't speak the metric contribute nothing.
    text = "SELECT count(gflops), max(gflops) WHERE numprocs >= 2 GROUP BY app, numprocs"
    show(text, grid.client.query(text))

    # Raw mode: individual Performance Results, filtered by value.
    text = "SELECT bandwidth_mbps FROM PRESTA-RMA WHERE focus = '/Op/MPI_Put' LIMIT 4"
    show(text, grid.client.query(text))

    # The plan cache: the second identical query skips the federation.
    text = "SELECT mean(latency_us) FROM PRESTA-RMA GROUP BY network"
    t0 = time.perf_counter()
    grid.client.query(text)
    cold = time.perf_counter() - t0
    t0 = time.perf_counter()
    grid.client.query(text)
    hot = time.perf_counter() - t0
    print(f"\n== plan cache: cold {cold * 1000:.1f} ms, hot {hot * 1000:.2f} ms")

    # Cache coherence: deploy_federation() subscribed the service to every
    # member Execution's data-update topic, so a store update invalidates
    # exactly the cached plans that read it — the PRESTA plan above stays
    # cached while the HPL plans recompute.
    hpl_text = "SELECT max(gflops) FROM HPL GROUP BY app"
    show(hpl_text, grid.client.query(hpl_text))
    exec_id = grid.hpl_site.wrapper.get_all_exec_ids()[0]
    grid.hpl_site.wrapper.conn.execute(
        "UPDATE hpl_runs SET gflops = ? WHERE runid = ?", [99999.0, int(exec_id)]
    )
    grid.execution_service("HPL", exec_id).data_updated("gflops recalibrated")
    show(hpl_text + "  (after data_updated)", grid.client.query(hpl_text))
    stats = grid.client.coherence_stats()
    print(
        f"\n== coherence: {stats['subscriptions']} subscriptions, "
        f"{stats['invalidations']} targeted invalidation(s), "
        f"{stats['fullClears']} full clear(s)"
    )

    grid.cleanup()


if __name__ == "__main__":
    main()
