"""SOAP 1.1-style messaging substrate.

Implements the message layer the thesis attributes its Grid-services
overhead to: envelope construction/parsing, typed value encoding for RPC
parameters and results, and fault handling.  Every remote call in this
reproduction really does run
``native call -> typed encode -> XML serialize -> bytes -> XML parse ->
typed decode -> native dispatch`` in both directions, so the overhead
measured in Table 4 is incurred, not modeled.
"""

from repro.soap.encoding import (
    SoapEncodingError,
    XsdType,
    decode_value,
    encode_value,
    python_type_for,
    xsd_type_for,
)
from repro.soap.envelope import (
    SOAP_ENV_NS,
    SoapEnvelope,
    SoapMessageError,
    build_envelope,
    parse_envelope,
)
from repro.soap.chunks import (
    CHUNK_HEADER,
    ENCODING_COLBATCH,
    ENCODING_XML,
    WIRE_ENCODINGS,
    ChunkEnvelope,
    ChunkError,
    decode_chunk,
    encode_chunk,
)
from repro.soap.colbatch import (
    COLBATCH_VERSION,
    decode_batch,
    encode_batch,
)
from repro.soap.faults import SoapFault, fault_from_exception
from repro.soap.rpc import (
    RpcRequest,
    RpcResponse,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
)

__all__ = [
    "CHUNK_HEADER",
    "COLBATCH_VERSION",
    "ENCODING_COLBATCH",
    "ENCODING_XML",
    "WIRE_ENCODINGS",
    "ChunkEnvelope",
    "ChunkError",
    "SOAP_ENV_NS",
    "decode_batch",
    "encode_batch",
    "RpcRequest",
    "RpcResponse",
    "SoapEncodingError",
    "SoapEnvelope",
    "SoapFault",
    "SoapMessageError",
    "XsdType",
    "build_envelope",
    "decode_chunk",
    "decode_request",
    "decode_response",
    "decode_value",
    "encode_chunk",
    "encode_request",
    "encode_response",
    "encode_value",
    "fault_from_exception",
    "parse_envelope",
    "python_type_for",
    "xsd_type_for",
]
