"""Time sources.

``RealClock`` wraps ``time.perf_counter`` and backs the wall-clock
measurements of Tables 4 and 5 (the analog of the thesis's
``System.currentTimeMillis()``).  ``VirtualClock`` is an explicitly
advanced clock used by the scalability replay and by service-lifetime
tests, where determinism matters more than realism.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable


@runtime_checkable
class Clock(Protocol):
    """Anything with a monotonically non-decreasing ``now() -> float``."""

    def now(self) -> float:  # pragma: no cover - protocol signature
        ...


class RealClock:
    """Wall-clock seconds from ``time.perf_counter``."""

    __slots__ = ()

    def now(self) -> float:
        return time.perf_counter()


class VirtualClock:
    """A manually advanced clock; never moves on its own."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        """Move forward by *dt* seconds (negative dt is rejected)."""
        if dt < 0:
            raise ValueError(f"cannot advance a clock by {dt}")
        self._now += dt
        return self._now

    def advance_to(self, t: float) -> float:
        """Move forward to absolute time *t* (no-op if already past it)."""
        if t > self._now:
            self._now = t
        return self._now
