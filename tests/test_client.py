"""Tests for the Virtualization Layer: client, panels, local bypass."""

import pytest

from repro.core import (
    ApplicationQueryPanel,
    ExecutionQuery,
    ExecutionQueryPanel,
    PPerfGridClient,
    PPerfGridSite,
    SiteConfig,
)
from repro.core.client import LocalApplicationBinding
from repro.core.visualize import render_metric_chart, render_series_table
from repro.datastores import generate_hpl
from repro.mapping import HplRdbmsWrapper
from repro.ogsi import GridEnvironment


class TestDiscoveryAndBinding:
    def test_discover_organizations(self, shared_grid):
        orgs = shared_grid.client.discover_organizations("%")
        assert [o.name for o in orgs] == ["Portland State University"]
        services = orgs[0].services()
        assert sorted(s.name for s in services) == ["HPL", "PRESTA-RMA", "SMG98"]

    def test_bind_by_service_proxy(self, shared_grid):
        app = shared_grid.bind("PRESTA-RMA")
        assert app.app_info()["name"] == "PRESTA-RMA"

    def test_bind_by_raw_factory_url(self, shared_grid):
        app = shared_grid.client.bind(shared_grid.hpl_site.factory_url, "HPL")
        assert app.num_executions() > 0

    def test_bindings_tracked(self, fresh_grid):
        assert fresh_grid.client.bindings == []
        fresh_grid.bind("HPL")
        fresh_grid.bind("SMG98")
        assert len(fresh_grid.client.bindings) == 2

    def test_unbind_all_destroys_instances(self, fresh_grid):
        app = fresh_grid.bind("HPL")
        gsh = app.gsh
        fresh_grid.client.unbind_all()
        assert fresh_grid.client.bindings == []
        from repro.ogsi import GridServiceHandle

        parsed = GridServiceHandle.parse(gsh)
        container = fresh_grid.environment.container_for(parsed.authority)
        assert not container.has_service(parsed)

    def test_no_uddi_configured_raises(self):
        env = GridEnvironment()
        client = PPerfGridClient(env)
        with pytest.raises(RuntimeError):
            client.discover_organizations()

    def test_unknown_app_name(self, shared_grid):
        with pytest.raises(KeyError):
            shared_grid.bind("NOPE")


class TestApplicationQueryPanel:
    def test_queries_across_sites_merge(self, shared_grid):
        hpl = shared_grid.bind("HPL")
        rma = shared_grid.bind("PRESTA-RMA")
        panel = ApplicationQueryPanel()
        hpl_value = hpl.exec_query_params()["numprocs"][0]
        rma_value = rma.exec_query_params()["numprocs"][0]
        panel.add_query(hpl, "numprocs", hpl_value)
        panel.add_query(rma, "numprocs", rma_value)
        merged = panel.run_queries()
        expected = len(hpl.query_executions("numprocs", hpl_value)) + len(
            rma.query_executions("numprocs", rma_value)
        )
        assert len(merged) == expected

    def test_clear(self, shared_grid):
        panel = ApplicationQueryPanel()
        panel.add_query(shared_grid.bind("HPL"), "numprocs", "4")
        panel.clear()
        assert panel.run_queries() == []

    def test_operator_queries(self, shared_grid):
        hpl = shared_grid.bind("HPL")
        panel = ApplicationQueryPanel()
        panel.add_query(hpl, "numprocs", "4", ">")
        results = panel.run_queries()
        for execution in results:
            assert int(execution.info()["numprocs"]) > 4


class TestExecutionQueryPanel:
    def test_batch_pr_queries(self, shared_grid):
        hpl = shared_grid.bind("HPL")
        executions = hpl.all_executions()[:3]
        panel = ExecutionQueryPanel(executions=executions)
        panel.add_query(ExecutionQuery("gflops", ["/Run"]))
        results = panel.run_queries()
        assert len(results) == 3
        for prs in results.values():
            assert len(prs) == 1 and prs[0].metric == "gflops"

    def test_metric_value_filter(self, shared_grid):
        hpl = shared_grid.bind("HPL")
        executions = hpl.all_executions()
        all_values = [
            e.get_pr("gflops", ["/Run"])[0].value for e in executions
        ]
        cutoff = sorted(all_values)[len(all_values) // 2]
        panel = ExecutionQueryPanel(executions=executions)
        panel.add_query(ExecutionQuery("gflops", ["/Run"], min_value=cutoff))
        results = panel.run_queries()
        kept = [prs[0].value for prs in results.values() if prs]
        assert kept and all(v >= cutoff for v in kept)
        assert len(kept) == sum(1 for v in all_values if v >= cutoff)

    def test_max_value_filter(self, shared_grid):
        hpl = shared_grid.bind("HPL")
        executions = hpl.all_executions()[:5]
        panel = ExecutionQueryPanel(executions=executions)
        panel.add_query(ExecutionQuery("gflops", ["/Run"], max_value=-1.0))
        results = panel.run_queries()
        assert all(prs == [] for prs in results.values())

    def test_multiple_queries_concatenate(self, shared_grid):
        hpl = shared_grid.bind("HPL")
        executions = hpl.all_executions()[:2]
        panel = ExecutionQueryPanel(executions=executions)
        panel.add_query(ExecutionQuery("gflops", ["/Run"]))
        panel.add_query(ExecutionQuery("runtimesec", ["/Run"]))
        results = panel.run_queries()
        for prs in results.values():
            assert {p.metric for p in prs} == {"gflops", "runtimesec"}


class TestLocalBypass:
    @pytest.fixture()
    def env_site_client(self):
        env = GridEnvironment()
        wrapper = HplRdbmsWrapper(generate_hpl(num_executions=6).to_database())
        site = PPerfGridSite(env, SiteConfig("local:1", "HPL"), wrapper)
        client = PPerfGridClient(env)
        return env, site, wrapper, client

    def test_bypass_binding_is_local(self, env_site_client):
        env, site, wrapper, client = env_site_client
        client.register_local_wrapper(site.factory_url, wrapper)
        binding = client.bind(site.factory_url, "HPL")
        assert isinstance(binding, LocalApplicationBinding)
        assert binding.is_local

    def test_bypass_skips_transport(self, env_site_client):
        env, site, wrapper, client = env_site_client
        client.register_local_wrapper(site.factory_url, wrapper)
        binding = client.bind(site.factory_url, "HPL")
        calls_before = env.recorder.count("transport.calls")
        executions = binding.query_executions("numprocs", binding.exec_query_params()["numprocs"][0])
        for execution in executions:
            execution.get_pr("gflops", ["/Run"])
        assert env.recorder.count("transport.calls") == calls_before

    def test_bypass_results_match_remote(self, env_site_client):
        env, site, wrapper, client = env_site_client
        remote = client.bind(site.factory_url, "HPL")  # not registered yet
        client.register_local_wrapper(site.factory_url, wrapper)
        local = client.bind(site.factory_url, "HPL")
        rem = remote.all_executions()[0].get_pr("gflops", ["/Run"])[0]
        loc = local.all_executions()[0].get_pr("gflops", ["/Run"])[0]
        assert rem.value == loc.value
        assert remote.num_executions() == local.num_executions()
        assert remote.exec_query_params() == local.exec_query_params()


class TestVisualize:
    def test_metric_chart_contains_values(self, shared_grid):
        hpl = shared_grid.bind("HPL")
        executions = hpl.all_executions()[:3]
        results = {e.gsh: e.get_pr("gflops", ["/Run"]) for e in executions}
        chart = render_metric_chart(results, "gflops")
        assert "gflops per Execution" in chart
        assert chart.count("|") >= 3

    def test_metric_chart_handles_missing_data(self):
        chart = render_metric_chart({"g1": []}, "gflops")
        assert "(no data)" in chart

    def test_metric_chart_empty(self):
        assert "no executions" in render_metric_chart({}, "gflops")

    def test_series_table_truncates(self, shared_grid):
        rma = shared_grid.bind("PRESTA-RMA")
        execution = rma.all_executions()[0]
        prs = execution.get_pr("latency_us", ["/Op/MPI_Put"])
        table = render_series_table(prs, max_rows=5)
        assert "more)" in table
        assert "/Op/MPI_Put/msgsize/8" in table


class TestParallelQueryPanel:
    def test_parallel_matches_serial(self, shared_grid):
        hpl = shared_grid.bind("HPL")
        executions = hpl.all_executions()[:6]
        panel = ExecutionQueryPanel(executions=executions)
        panel.add_query(ExecutionQuery("gflops", ["/Run"]))
        serial = panel.run_queries()
        parallel = panel.run_queries_parallel(max_workers=4)
        assert serial.keys() == parallel.keys()
        for gsh in serial:
            assert serial[gsh] == parallel[gsh]

    def test_parallel_single_worker(self, shared_grid):
        hpl = shared_grid.bind("HPL")
        panel = ExecutionQueryPanel(executions=hpl.all_executions()[:2])
        panel.add_query(ExecutionQuery("runtimesec", ["/Run"]))
        assert len(panel.run_queries_parallel(max_workers=1)) == 2

    def test_parallel_invalid_workers(self, shared_grid):
        panel = ExecutionQueryPanel()
        import pytest as _pytest

        with _pytest.raises(ValueError):
            panel.run_queries_parallel(max_workers=0)


class TestHistogram:
    def test_histogram_of_trace_intervals(self, shared_grid):
        from repro.core.visualize import render_histogram

        smg = shared_grid.bind("SMG98")
        execution = smg.all_executions()[0]
        results = execution.get_pr("time_spent", ["/Code/SMG/smg_relax"])
        hist = render_histogram(results, bins=8)
        assert "time_spent" in hist
        # Every value is counted exactly once across the bins.
        counts = [int(line.rsplit(" ", 1)[1]) for line in hist.splitlines()[1:]]
        assert sum(counts) == len(results)

    def test_histogram_empty_and_degenerate(self):
        from repro.core.semantic import PerformanceResult
        from repro.core.visualize import render_histogram

        assert "no results" in render_histogram([])
        same = [PerformanceResult("m", "/f", "t", 0, 1, 5.0)] * 3
        assert "all 3 values equal 5" in render_histogram(same)

    def test_histogram_invalid_bins(self):
        from repro.core.semantic import PerformanceResult
        from repro.core.visualize import render_histogram

        prs = [PerformanceResult("m", "/f", "t", 0, 1, float(v)) for v in (1, 2)]
        import pytest as _pytest

        with _pytest.raises(ValueError):
            render_histogram(prs, bins=0)
