"""Tests for the experiment drivers at tiny scale (shape, not magnitude)."""

import pytest

from repro.experiments import (
    GridScale,
    render_table1,
    render_table2,
    render_table3,
    run_cache_policy_ablation,
    run_caching_experiment,
    run_distribution_ablation,
    run_overhead_experiment,
    run_scalability_experiment,
    run_serialization_ablation,
)


@pytest.fixture(scope="module")
def overhead_result():
    return run_overhead_experiment(
        GridScale.tiny(), hpl_queries=8, rma_queries=8, smg98_queries=4
    )


class TestOverheadExperiment:
    def test_rows_cover_all_sources(self, overhead_result):
        assert [r.source for r in overhead_result.rows] == [
            "HPL",
            "PRESTA-RMA",
            "SMG98",
        ]

    def test_overhead_is_total_minus_mapping(self, overhead_result):
        for row in overhead_result.rows:
            assert row.mean_overhead_ms == pytest.approx(
                row.mean_total_ms - row.mean_mapping_ms
            )
            assert 0 < row.mean_mapping_ms < row.mean_total_ms

    def test_payload_ordering(self, overhead_result):
        # HPL moves the least data (Table 4 shape).  The full SMG98 >
        # RMA ordering only emerges at paper scale (the tiny trace has
        # few intervals per window) and is asserted by the benchmark.
        by = {r.source: r.payload_bytes_per_query for r in overhead_result.rows}
        assert by["SMG98"] > by["HPL"]
        assert by["PRESTA-RMA"] > by["HPL"]

    def test_wire_bytes_exceed_payload(self, overhead_result):
        for row in overhead_result.rows:
            assert row.bytes_per_query > row.payload_bytes_per_query

    def test_table_renders(self, overhead_result):
        table = overhead_result.to_table()
        assert "Table 4" in table and "SMG98" in table

    def test_row_lookup(self, overhead_result):
        assert overhead_result.row("HPL").source == "HPL"
        with pytest.raises(KeyError):
            overhead_result.row("NOPE")


class TestScalabilityExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_scalability_experiment(counts=(2, 4, 8), repeats=5, rounds=2)

    def test_speedup_near_two_hosts(self, result):
        # Interleaved across 2 hosts with identical replayed costs.  At
        # count=2 each host's total is only 10 queries, so a single slow
        # sample can push the balance point a few percent off 2.0.
        for s in result.speedups():
            assert 1.55 <= s <= 2.05
        assert result.mean_speedup == pytest.approx(2.0, abs=0.25)

    def test_times_grow_with_fanout(self, result):
        assert result.nonoptimized_s == sorted(result.nonoptimized_s)
        assert result.optimized_s == sorted(result.optimized_s)

    def test_optimized_never_slower(self, result):
        for a, b in zip(result.nonoptimized_s, result.optimized_s):
            assert b <= a

    def test_relative_change_consistent(self, result):
        for rc, s in zip(result.relative_changes(), result.speedups()):
            assert rc == pytest.approx((s - 1) * 100)

    def test_render(self, result):
        assert "Figure 12" in result.to_table()
        assert "Optimized" in result.to_chart()

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            run_scalability_experiment(counts=(2,), replicas=1)

    def test_four_replicas_speedup_near_four(self):
        # Enough queries per host that one noisy sample cannot skew a
        # host's total (the speedup is sum-of-costs / max-per-host).
        result = run_scalability_experiment(
            counts=(16,), repeats=5, rounds=2, replicas=4
        )
        assert result.mean_speedup == pytest.approx(4.0, abs=0.7)


class TestCachingExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_caching_experiment(GridScale.tiny(), num_queries=6)

    def test_rows_cover_sources(self, result):
        assert [r.source for r in result.rows] == ["HPL", "PRESTA-RMA", "SMG98"]

    def test_caching_never_slower_much(self, result):
        for row in result.rows:
            # At tiny scale the HPL/RMA means are sub-millisecond and
            # noise-dominated; the bound only guards against caching
            # being a systematic loss.  The paper-scale benchmark
            # asserts the tighter shape.
            assert row.speedup > 0.5

    def test_smg98_benefits_most(self, result):
        by = {r.source: r.speedup for r in result.rows}
        assert by["SMG98"] >= max(by["HPL"], by["PRESTA-RMA"]) * 0.7

    def test_render(self, result):
        assert "Table 5" in result.to_table()


class TestPortTypeTables:
    def test_table1(self):
        table = render_table1()
        assert "Table 1" in table
        for op in ("getAppInfo", "getNumExecs", "getExecQueryParams", "getAllExecs", "getExecs"):
            assert op in table

    def test_table2(self):
        table = render_table2()
        for op in ("getInfo", "getFoci", "getMetrics", "getTypes", "getTimeStartEnd", "getPR"):
            assert op in table

    def test_table3(self):
        table = render_table3()
        for op in ("FindServiceData", "CreateService", "FindByHandle", "DeliverNotification"):
            assert op in table


class TestAblations:
    def test_serialization_grows_with_payload(self):
        result = run_serialization_ablation(payload_sizes=(1, 100), trials=3)
        assert result.soap_us[1] > result.soap_us[0]
        assert result.wire_bytes[1] > result.wire_bytes[0]
        assert "A1" in result.to_table()

    def test_distribution_homogeneous(self):
        result = run_distribution_ablation(host_factors=(1.0, 1.0))
        spans = result.makespans
        assert spans["block"] == pytest.approx(2 * spans["interleaved"])
        assert spans["least-loaded"] == pytest.approx(spans["interleaved"])
        assert "A2" in result.to_table()

    def test_distribution_heterogeneous_least_loaded_wins(self):
        result = run_distribution_ablation(
            host_factors=(1.0, 3.0), scenario="heterogeneous"
        )
        # Interleaving ignores speed differences; least-loaded happens to
        # also ignore them here (balanced counts), but block is worst or
        # equal, and all makespans are positive.
        assert all(v > 0 for v in result.makespans.values())
        assert result.makespans["interleaved"] <= result.makespans["block"] * 1.01

    def test_cache_policy_skew_favors_small_caches(self):
        result = run_cache_policy_ablation(num_lookups=2000, skewed=True)
        assert result.hit_rates["unbounded"] >= result.hit_rates["lru(32)"]
        assert 0 < result.hit_rates["lru(32)"] < 1
        assert "A3" in result.to_table()

    def test_cache_policy_uniform_hurts_lru(self):
        skewed = run_cache_policy_ablation(num_lookups=2000, skewed=True)
        uniform = run_cache_policy_ablation(num_lookups=2000, skewed=False)
        assert skewed.hit_rates["lru(32)"] > uniform.hit_rates["lru(32)"]

    def test_network_contention_crossover(self):
        from repro.experiments import run_network_contention_ablation

        result = run_network_contention_ablation(
            payload_bytes=(100, 1_000_000), queries_per_execution=5
        )
        assert result.speedups[0] > 1.8
        assert result.speedups[-1] < 1.1
        assert result.crossover_bytes() == 1_000_000
        assert 0.0 <= result.bus_utilization[-1] <= 1.0
        assert "A4" in result.to_table()

    def test_network_contention_with_fast_network_never_crosses(self):
        from repro.experiments import run_network_contention_ablation
        from repro.simnet.network import NetworkModel

        infinite = NetworkModel(latency_s=0.0, bandwidth_bytes_per_s=1e15)
        result = run_network_contention_ablation(
            payload_bytes=(100, 1_000_000), network=infinite
        )
        assert all(s > 1.9 for s in result.speedups)
        assert result.crossover_bytes() is None
