"""Cache coherence for the federated plan cache (notification-driven).

Covers the coherence layer end to end: a ``data_updated()`` on one
member Execution invalidates exactly the cached plans that read it,
the insert-after-invalidate race is closed by generation counters, and
member-task failures degrade the result instead of aborting the query.
"""

from __future__ import annotations

import pytest

from repro.core.semantic import PerformanceResult
from repro.experiments.common import GridScale, build_grid, build_synthetic_grid
from repro.fedquery import FEDERATED_QUERY_PORTTYPE, QueryError
from repro.mapping.memory import InMemoryExecution, InMemoryWrapper

HPL_QUERY = "SELECT count(gflops), max(gflops) FROM HPL GROUP BY app"
PRESTA_QUERY = "SELECT count(latency_us) FROM PRESTA-RMA GROUP BY network"


@pytest.fixture()
def grid():
    """A tiny grid with a coherence-enabled FederatedQuery service."""
    grid = build_grid(GridScale.tiny())
    grid.deploy_federation()
    yield grid
    grid.cleanup()


def hpl_exec_service(grid, index: int = 0):
    exec_id = grid.hpl_site.wrapper.get_all_exec_ids()[index]
    service = grid.execution_service("HPL", exec_id)
    assert service is not None  # instantiated by subscribeUpdates()
    return service


class TestSubscriptions:
    def test_deploy_federation_subscribes_members(self, grid):
        stats = grid.fed_engine.coherence_stats()
        executions = (
            grid.scale.hpl_executions
            + grid.scale.smg98_executions
            + grid.scale.presta_executions
        )
        assert stats["subscriptions"] == executions
        # every member Execution service carries exactly one subscription
        assert hpl_exec_service(grid).subscription_count() == 1

    def test_subscribe_updates_idempotent_over_soap(self, grid):
        stub = grid.environment.stub_for_handle(grid.fed_gsh, FEDERATED_QUERY_PORTTYPE)
        assert stub.subscribeUpdates() == 0  # deploy_federation already did it
        assert grid.client.subscribe_updates() == 0
        assert hpl_exec_service(grid).subscription_count() == 1

    def test_coherence_stats_over_soap(self, grid):
        stats = grid.client.coherence_stats()
        assert set(stats) == {
            "subscriptions",
            "notifications",
            "invalidations",
            "fullClears",
            "memberClears",
            "staleDiscards",
            "statsInvalidations",
            "statsDeltas",
            "trackedPlans",
        }


class TestTargetedInvalidation:
    def test_update_drops_only_dependent_plans(self, grid):
        engine = grid.fed_engine
        before_max = engine.execute(HPL_QUERY).rows[0]["max(gflops)"]
        engine.execute(PRESTA_QUERY)
        assert engine.execute(HPL_QUERY).cached is True
        assert engine.execute(PRESTA_QUERY).cached is True

        # mutate the HPL store under one execution, then announce it
        service = hpl_exec_service(grid)
        grid.hpl_site.wrapper.conn.execute(
            "UPDATE hpl_runs SET gflops = ? WHERE runid = ?",
            [99999.0, int(service.exec_id)],
        )
        assert service.data_updated("gflops recalibrated") == 1

        # the unrelated fingerprint still answers from the plan cache...
        assert engine.execute(PRESTA_QUERY).cached is True
        # ...while the affected one recomputes and sees the fresh rows
        fresh = engine.execute(HPL_QUERY)
        assert fresh.cached is False
        assert fresh.rows[0]["max(gflops)"] == 99999.0
        assert before_max != 99999.0

        stats = grid.client.coherence_stats()
        assert stats["invalidations"] >= 1
        assert stats["fullClears"] == 0
        assert stats["notifications"] >= 1

    def test_recached_result_reflects_update(self, grid):
        engine = grid.fed_engine
        engine.execute(HPL_QUERY)
        service = hpl_exec_service(grid)
        grid.hpl_site.wrapper.conn.execute(
            "UPDATE hpl_runs SET gflops = ? WHERE runid = ?",
            [77777.0, int(service.exec_id)],
        )
        service.data_updated()
        engine.execute(HPL_QUERY)
        hot = engine.execute(HPL_QUERY)  # re-cached, post-update rows
        assert hot.cached is True
        assert hot.rows[0]["max(gflops)"] == 77777.0

    def test_execution_pr_cache_cleared_before_notify(self, grid):
        """A subscriber re-querying from its callback sees fresh data."""
        service = hpl_exec_service(grid)
        packed_before = service.getPR("gflops", ["/Run"], "0.0", "1e12", "UNDEFINED")
        grid.hpl_site.wrapper.conn.execute(
            "UPDATE hpl_runs SET gflops = ? WHERE runid = ?",
            [55555.0, int(service.exec_id)],
        )
        seen_during_delivery: list[float] = []
        from repro.ogsi.notification import NotificationSinkBase

        def on_delivery(topic, message):
            packed = service.getPR("gflops", ["/Run"], "0.0", "1e12", "UNDEFINED")
            seen_during_delivery.append(service.unpack_results(packed)[0].value)

        sink = NotificationSinkBase(callback=on_delivery)
        gsh = grid.hpl_site.container.deploy("services/coherence-probe", sink)
        service.SubscribeToNotificationTopic("data-update", gsh.url(), 0.0)
        service.data_updated("probe")
        assert seen_during_delivery == [55555.0]
        assert service.unpack_results(packed_before)[0].value != 55555.0
        assert service.generation == 1

    def test_unattributable_update_falls_back_to_full_clear(self, grid):
        engine = grid.fed_engine
        engine.execute(HPL_QUERY)
        engine._on_update("data-update", "no-such-exec|1|mystery")
        assert engine.execute(HPL_QUERY).cached is False
        assert engine.coherence_stats()["fullClears"] == 1
        assert engine.coherence_stats()["memberClears"] == 0

    def test_member_source_update_scopes_the_clear(self, grid):
        """An unknown-execution update whose source handle names a known
        member drops only that member's dependent plans."""
        engine = grid.fed_engine
        engine.execute(HPL_QUERY)
        engine.execute(PRESTA_QUERY)
        source = "ppg://hpl.pdx.edu:8080/services/HPL/ExecutionFactory/instances/999"
        engine._on_update("data-update", f"999|1|{source}|late publisher")
        stats = engine.coherence_stats()
        assert stats["memberClears"] == 1
        assert stats["fullClears"] == 0
        # the unrelated member's plan survives; the named member's drops
        assert engine.execute(PRESTA_QUERY).cached is True
        assert engine.execute(HPL_QUERY).cached is False


class TestInsertAfterInvalidateRace:
    def test_mid_query_update_discards_result(self, grid, monkeypatch):
        engine = grid.fed_engine
        service = hpl_exec_service(grid)
        # an attribute group key keeps this below tier 0, so the query
        # still fans out and the race can strike mid-flight (the tier-0
        # variant of this race lives in test_fedquery_tier0)
        query = "SELECT count(gflops), max(gflops) FROM HPL GROUP BY numprocs"
        original = engine._collect_tasks

        def racy_collect(plan, stats):
            tasks = original(plan, stats)

            def first_then_update(task=tasks[0]):
                result = task()
                # the store updates while the fan-out is still in flight
                service.data_updated("mid-query")
                return result

            return [first_then_update, *tasks[1:]]

        monkeypatch.setattr(engine, "_collect_tasks", racy_collect)
        result = engine.execute(query)
        assert result.cached is False and result.rows
        monkeypatch.setattr(engine, "_collect_tasks", original)
        # the superseded result was discarded, not cached
        assert engine.execute(query).cached is False
        assert engine.coherence_stats()["staleDiscards"] == 1


class TestDegradedResults:
    def test_one_failing_member_degrades_not_aborts(self, grid, monkeypatch):
        engine = grid.fed_engine

        def broken(*args, **kwargs):
            raise RuntimeError("store connection lost")

        monkeypatch.setattr(hpl_exec_service(grid), "getPRAgg", broken)
        result = engine.execute("SELECT count(gflops) FROM HPL GROUP BY numprocs")
        assert result.stats["errors"] == 1
        assert len(result.errors) == 1 and "store connection lost" in result.errors[0]
        # surviving executions still contribute rows
        assert sum(r["count(gflops)"] for r in result.rows) > 0

    def test_degraded_result_not_cached(self, grid, monkeypatch):
        engine = grid.fed_engine
        text = "SELECT mean(gflops) FROM HPL GROUP BY machine"

        def broken(*args, **kwargs):
            raise RuntimeError("transient")

        monkeypatch.setattr(hpl_exec_service(grid), "getPRAgg", broken)
        assert engine.execute(text).errors
        monkeypatch.undo()
        # the partial answer was not memoized; the retry is complete
        retry = engine.execute(text)
        assert retry.cached is False and not retry.errors
        assert engine.execute(text).cached is True

    def test_all_members_failing_raises(self, grid, monkeypatch):
        engine = grid.fed_engine

        def broken(*args, **kwargs):
            raise RuntimeError("down")

        for exec_id in grid.hpl_site.wrapper.get_all_exec_ids():
            monkeypatch.setattr(
                grid.execution_service("HPL", exec_id), "getPRAgg", broken
            )
        # GROUP BY numprocs: below tier 0, so the fan-out actually runs
        with pytest.raises(QueryError, match="member task"):
            engine.execute("SELECT min(gflops) FROM HPL GROUP BY numprocs")

    def test_query_error_in_task_is_hard_failure(self, grid, monkeypatch):
        engine = grid.fed_engine

        def bad_exec_id(execution):
            raise QueryError("execution publishes no execId")

        monkeypatch.setattr(engine, "_execution_id", bad_exec_id)
        with pytest.raises(QueryError, match="no execId"):
            engine.execute("SELECT sum(gflops) FROM HPL GROUP BY numprocs")


class TestStatsSkipReevaluation:
    """A stats-proven skip must not outlive the statistics behind it.

    The plan never read any of the skipped member's executions, so
    ordinary (app, exec_id) dependency tracking would leave it cached
    forever; the wildcard (app, "*") dependency plus the stats-cache
    invalidation make a ``data_updated`` re-evaluate the skip.
    """

    QUERY = "SELECT count(m) GROUP BY app"

    def _grid(self):
        def result(value: float) -> PerformanceResult:
            return PerformanceResult("m", "/R", "synthetic", 0.0, 1.0, value)

        a = InMemoryWrapper(
            "A", [InMemoryExecution("0", {}, [result(v) for v in (1.0, 2.0)])]
        )
        # B starts empty: its stats prove "m: not recorded" -> skip
        b = InMemoryWrapper("B", [InMemoryExecution("0", {}, [])])
        grid = build_synthetic_grid({"A": a, "B": b})
        engine = grid.deploy_federation()
        return grid, engine, b

    def test_update_reopens_a_stats_proven_skip(self):
        grid, engine, b = self._grid()
        first = engine.execute(self.QUERY)
        assert first.stats["skippedMembers"] == 1
        assert [(r["app"], r["count(m)"]) for r in first.rows] == [("A", 2.0)]
        assert engine.execute(self.QUERY).cached is True

        # the skipped member's store gains m rows, then announces it
        b.executions_data[0].results.append(
            PerformanceResult("m", "/R", "synthetic", 0.0, 1.0, 7.0)
        )
        service = grid.execution_service("B", "0")
        assert service.data_updated("backfilled m") == 1

        stats = engine.coherence_stats()
        assert stats["statsInvalidations"] >= 1  # B's cached stats dropped
        assert stats["invalidations"] >= 1  # ...and the dependent plan

        fresh = engine.execute(self.QUERY)
        assert fresh.cached is False
        assert fresh.stats["skippedMembers"] == 0
        assert [(r["app"], r["count(m)"]) for r in fresh.rows] == [
            ("A", 2.0),
            ("B", 1.0),
        ]

    def test_update_to_unrelated_member_keeps_the_skip(self):
        grid, engine, b = self._grid()
        engine.execute(self.QUERY)
        service = grid.execution_service("A", "0")
        assert service.data_updated("A only") == 1
        # A's update invalidates the plan (it read A), but the re-plan
        # still proves B away — the skip itself was not disturbed
        fresh = engine.execute(self.QUERY)
        assert fresh.cached is False
        assert fresh.stats["skippedMembers"] == 1


class TestRefreshMembers:
    def test_refresh_clears_exec_id_cache(self, grid):
        engine = grid.fed_engine
        engine.execute(HPL_QUERY)
        assert engine._exec_ids  # populated during the fan-out
        engine.refresh_members()
        assert engine._exec_ids == {}
        # re-discovery still answers correctly afterwards
        assert engine.execute("SELECT count(resid) FROM HPL GROUP BY app").rows
