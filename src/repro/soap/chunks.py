"""Chunk envelope for streaming result transfer.

A :class:`repro.ogsi.cursor.ResultCursorService` answers each ``next``
call with one *chunk*: a header record followed by the payload rows,
all inside the ordinary SOAP string array.  Keeping the framing inside
the array (instead of inventing a new XML shape) means the existing
encoding, stub, and container layers carry chunks unchanged — the same
architecture-adapter discipline as the ``name|value`` wire records.

Header wire form::

    #chunk|<seq>|<count>|<done>

``seq`` is the zero-based chunk sequence number (clients verify it to
detect missed or replayed fetches), ``count`` the number of payload
rows following the header, and ``done`` ``1`` on the final chunk of the
stream (``0`` otherwise).  ``#`` cannot start a packed result record,
so the header is unambiguous.
"""

from __future__ import annotations

from dataclasses import dataclass

#: first field of every chunk header record
CHUNK_HEADER = "#chunk"


class ChunkError(ValueError):
    """Raised for malformed or out-of-sequence chunk envelopes."""


@dataclass(frozen=True)
class ChunkEnvelope:
    """One decoded chunk: sequence number, payload rows, end-of-stream."""

    seq: int
    rows: tuple[str, ...]
    done: bool


def encode_chunk(seq: int, rows: list[str], done: bool) -> list[str]:
    """Frame *rows* as a chunk payload (header record + rows)."""
    if seq < 0:
        raise ChunkError(f"chunk seq must be >= 0, got {seq}")
    return [f"{CHUNK_HEADER}|{seq}|{len(rows)}|{1 if done else 0}", *rows]


def decode_chunk(payload: list[str]) -> ChunkEnvelope:
    """Parse a chunk payload; raises :class:`ChunkError` on bad framing."""
    if not payload:
        raise ChunkError("empty chunk payload (missing header)")
    header = payload[0]
    parts = header.split("|")
    if len(parts) != 4 or parts[0] != CHUNK_HEADER:
        raise ChunkError(f"bad chunk header {header!r}")
    try:
        seq = int(parts[1])
        count = int(parts[2])
        done = bool(int(parts[3]))
    except ValueError as exc:
        raise ChunkError(f"bad chunk header {header!r}: {exc}") from exc
    rows = tuple(payload[1:])
    if len(rows) != count:
        raise ChunkError(
            f"chunk {seq} declares {count} row(s) but carries {len(rows)}"
        )
    return ChunkEnvelope(seq=seq, rows=rows, done=done)
