"""Row storage and hash indexes.

Rows live in a list of tuples; deleted rows become ``None`` tombstones and
are compacted when more than half the slots are dead.  Indexes are hash
maps from column value to a set of live row ids — equality lookups only,
which covers every query the Mapping Layer issues (the thesis's wrappers
query by id / attribute equality).
"""

from __future__ import annotations

from typing import Iterator

from repro.minidb.errors import IntegrityError, ProgrammingError
from repro.minidb.schema import TableSchema
from repro.minidb.types import SqlValue, coerce


class HashIndex:
    """Equality index on one column."""

    __slots__ = ("name", "column", "unique", "_map")

    def __init__(self, name: str, column: str, unique: bool = False) -> None:
        self.name = name
        self.column = column
        self.unique = unique
        self._map: dict[SqlValue, set[int]] = {}

    def add(self, value: SqlValue, rowid: int) -> None:
        if value is None:
            return  # NULLs are not indexed (SQL semantics: NULL != NULL)
        bucket = self._map.setdefault(value, set())
        if self.unique and bucket:
            raise IntegrityError(
                f"unique index {self.name!r} violated by duplicate value {value!r}"
            )
        bucket.add(rowid)

    def remove(self, value: SqlValue, rowid: int) -> None:
        if value is None:
            return
        bucket = self._map.get(value)
        if bucket is not None:
            bucket.discard(rowid)
            if not bucket:
                del self._map[value]

    def lookup(self, value: SqlValue) -> set[int]:
        if value is None:
            return set()
        return self._map.get(value, set())

    def rebuild(self, rows: list[tuple | None], col_idx: int) -> None:
        self._map.clear()
        for rowid, row in enumerate(rows):
            if row is not None:
                self.add(row[col_idx], rowid)

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._map.values())


class Table:
    """A heap of rows plus its schema and indexes."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self.rows: list[tuple | None] = []
        self.live_count = 0
        self.indexes: dict[str, HashIndex] = {}
        #: the open transaction's undo log, set by Database.begin()
        self.txn_log = None
        pk = schema.primary_key
        if pk is not None:
            self.create_index(f"__pk_{schema.name}", pk.name, unique=True)

    # ------------------------------------------------------------ indexes
    def create_index(self, name: str, column: str, unique: bool = False) -> HashIndex:
        if name in self.indexes:
            raise ProgrammingError(f"index {name!r} already exists")
        col_idx = self.schema.column_index(column)
        index = HashIndex(name, self.schema.columns[col_idx].name, unique)
        index.rebuild(self.rows, col_idx)
        self.indexes[name] = index
        return index

    def drop_index(self, name: str) -> None:
        if name not in self.indexes:
            raise ProgrammingError(f"no index {name!r}")
        if name.startswith("__pk_"):
            raise ProgrammingError("cannot drop the primary-key index")
        del self.indexes[name]

    def index_on(self, column: str) -> HashIndex | None:
        """Any index whose key column matches *column* (case-insensitive)."""
        low = column.lower()
        for index in self.indexes.values():
            if index.column.lower() == low:
                return index
        return None

    # --------------------------------------------------------------- rows
    def insert(self, values: dict[str, SqlValue]) -> int:
        """Insert one row given a column->value mapping; returns the rowid."""
        row: list[SqlValue] = []
        provided = {k.lower() for k in values}
        unknown = provided - {c.name.lower() for c in self.schema.columns}
        if unknown:
            raise ProgrammingError(
                f"unknown column(s) {sorted(unknown)} for table {self.schema.name!r}"
            )
        for col in self.schema.columns:
            value = None
            for key, v in values.items():
                if key.lower() == col.name.lower():
                    value = v
                    break
            value = coerce(value, col.sql_type, col.name)
            if value is None and (col.not_null or col.primary_key):
                raise IntegrityError(
                    f"column {col.name!r} of table {self.schema.name!r} may not be NULL"
                )
            row.append(value)
        rowid = len(self.rows)
        row_tuple = tuple(row)
        # Validate all indexes before mutating any (atomicity of one insert).
        for index in self.indexes.values():
            col_idx = self.schema.column_index(index.column)
            value = row_tuple[col_idx]
            if index.unique and value is not None and index.lookup(value):
                raise IntegrityError(
                    f"duplicate value {value!r} for unique column "
                    f"{index.column!r} of table {self.schema.name!r}"
                )
        self.rows.append(row_tuple)
        self.live_count += 1
        for index in self.indexes.values():
            index.add(row_tuple[self.schema.column_index(index.column)], rowid)
        if self.txn_log is not None:
            self.txn_log.record_insert(self, rowid)
        return rowid

    def insert_many(self, columns: list[str], rows: list[tuple] | list[list]) -> int:
        """Bulk insert positional rows (the ETL fast path).

        Bypasses SQL parsing but applies the same coercion and constraint
        checks as :meth:`insert`.  Returns the number of rows inserted.
        """
        col_indexes = [self.schema.column_index(c) for c in columns]
        defs = self.schema.columns
        width = len(defs)
        count = 0
        for values in rows:
            if len(values) != len(columns):
                raise ProgrammingError(
                    f"row has {len(values)} values for {len(columns)} columns"
                )
            row: list[SqlValue] = [None] * width
            for idx, value in zip(col_indexes, values):
                col = defs[idx]
                value = coerce(value, col.sql_type, col.name)
                if value is None and (col.not_null or col.primary_key):
                    raise IntegrityError(f"column {col.name!r} may not be NULL")
                row[idx] = value
            for i, col in enumerate(defs):
                if row[i] is None and (col.not_null or col.primary_key):
                    raise IntegrityError(f"column {col.name!r} may not be NULL")
            row_tuple = tuple(row)
            rowid = len(self.rows)
            for index in self.indexes.values():
                col_idx = self.schema.column_index(index.column)
                value = row_tuple[col_idx]
                if index.unique and value is not None and index.lookup(value):
                    raise IntegrityError(
                        f"duplicate value {value!r} for unique column {index.column!r}"
                    )
            self.rows.append(row_tuple)
            self.live_count += 1
            for index in self.indexes.values():
                index.add(row_tuple[self.schema.column_index(index.column)], rowid)
            if self.txn_log is not None:
                self.txn_log.record_insert(self, rowid)
            count += 1
        return count

    def delete_row(self, rowid: int) -> None:
        self._tombstone(rowid)
        self.maybe_compact()

    def delete_rows(self, rowids: list[int]) -> None:
        """Delete a batch, compacting once at the end.

        Compaction renumbers rowids, so callers holding a rowid list must
        use this instead of repeated :meth:`delete_row` calls.
        """
        for rowid in rowids:
            self._tombstone(rowid)
        self.maybe_compact()

    def _tombstone(self, rowid: int) -> None:
        row = self.rows[rowid]
        if row is None:
            raise ProgrammingError(f"row {rowid} already deleted")
        for index in self.indexes.values():
            index.remove(row[self.schema.column_index(index.column)], rowid)
        self.rows[rowid] = None
        self.live_count -= 1
        if self.txn_log is not None:
            self.txn_log.record_delete(self, rowid, row)

    def maybe_compact(self) -> None:
        if len(self.rows) > 64 and self.live_count < len(self.rows) // 2:
            if self.txn_log is not None:
                # Compaction renumbers rowids, which would invalidate the
                # undo log — defer until the transaction ends.
                self.txn_log.defer_compaction(self)
                return
            self._compact()

    def update_row(self, rowid: int, updates: dict[str, SqlValue]) -> None:
        row = self.rows[rowid]
        if row is None:
            raise ProgrammingError(f"row {rowid} is deleted")
        new_row = list(row)
        for name, value in updates.items():
            col_idx = self.schema.column_index(name)
            col = self.schema.columns[col_idx]
            value = coerce(value, col.sql_type, col.name)
            if value is None and (col.not_null or col.primary_key):
                raise IntegrityError(f"column {col.name!r} may not be NULL")
            new_row[col_idx] = value
        new_tuple = tuple(new_row)
        for index in self.indexes.values():
            col_idx = self.schema.column_index(index.column)
            old_v, new_v = row[col_idx], new_tuple[col_idx]
            if old_v != new_v and index.unique and new_v is not None and index.lookup(new_v):
                raise IntegrityError(
                    f"duplicate value {new_v!r} for unique column {index.column!r}"
                )
        for index in self.indexes.values():
            col_idx = self.schema.column_index(index.column)
            if row[col_idx] != new_tuple[col_idx]:
                index.remove(row[col_idx], rowid)
                index.add(new_tuple[col_idx], rowid)
        self.rows[rowid] = new_tuple
        if self.txn_log is not None:
            self.txn_log.record_update(self, rowid, row)

    # ------------------------------------------------------ rollback hooks
    def undo_insert(self, rowid: int) -> None:
        """Reverse an insert (rollback path; never logged)."""
        row = self.rows[rowid]
        if row is None:
            raise ProgrammingError(f"cannot undo insert of deleted row {rowid}")
        for index in self.indexes.values():
            index.remove(row[self.schema.column_index(index.column)], rowid)
        self.rows[rowid] = None
        self.live_count -= 1

    def undo_delete(self, rowid: int, row: tuple) -> None:
        """Reverse a delete (rollback path; never logged)."""
        if self.rows[rowid] is not None:
            raise ProgrammingError(f"cannot undo delete onto live row {rowid}")
        self.rows[rowid] = row
        self.live_count += 1
        for index in self.indexes.values():
            index.add(row[self.schema.column_index(index.column)], rowid)

    def undo_update(self, rowid: int, old_row: tuple) -> None:
        """Reverse an update (rollback path; never logged)."""
        current = self.rows[rowid]
        if current is None:
            raise ProgrammingError(f"cannot undo update of deleted row {rowid}")
        for index in self.indexes.values():
            col_idx = self.schema.column_index(index.column)
            if current[col_idx] != old_row[col_idx]:
                index.remove(current[col_idx], rowid)
                index.add(old_row[col_idx], rowid)
        self.rows[rowid] = old_row

    def _compact(self) -> None:
        self.rows = [row for row in self.rows if row is not None]
        for index in self.indexes.values():
            index.rebuild(self.rows, self.schema.column_index(index.column))

    def scan(self) -> Iterator[tuple[int, tuple]]:
        """Yield (rowid, row) for live rows."""
        for rowid, row in enumerate(self.rows):
            if row is not None:
                yield rowid, row

    def __len__(self) -> int:
        return self.live_count
