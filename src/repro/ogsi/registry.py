"""The Registry PortType (soft-state registration).

Registrations carry a lifetime; entries not refreshed within it are
swept.  This is the OGSI-level registry of Table 3 — distinct from the
UDDI business registry in :mod:`repro.uddi`, which handles the
organization-level publishing of Figure 8.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.minidb.expr import like_match
from repro.ogsi.porttypes import REGISTRY_PORTTYPE
from repro.ogsi.service import GridServiceBase


@dataclass
class _Registration:
    handle: str
    information: list[str]
    expires_at: float


class RegistryService(GridServiceBase):
    """Maps service handles to descriptive info with soft-state expiry."""

    porttype = REGISTRY_PORTTYPE

    def __init__(self) -> None:
        super().__init__()
        self._entries: dict[str, _Registration] = {}

    def _now(self) -> float:
        return self.container.clock.now() if self.container is not None else 0.0

    def _sweep(self) -> None:
        now = self._now()
        expired = [h for h, reg in self._entries.items() if reg.expires_at <= now]
        for handle in expired:
            del self._entries[handle]

    def RegisterService(self, handle: str, information: list[str], lifetime: float) -> None:
        """Register (or refresh) *handle*; lifetime <= 0 means no expiry."""
        self.require_active()
        if not handle:
            raise ValueError("handle may not be empty")
        expires_at = float("inf") if lifetime <= 0 else self._now() + lifetime
        self._entries[handle] = _Registration(handle, list(information or []), expires_at)

    def UnregisterService(self, handle: str) -> None:
        self.require_active()
        self._entries.pop(handle, None)

    def FindServices(self, namePattern: str) -> list[str]:
        """Handles whose first information entry matches a LIKE pattern.

        An empty pattern (or ``"%"``) returns every live handle.
        """
        self.require_active()
        self._sweep()
        pattern = namePattern or "%"
        out: list[str] = []
        for reg in self._entries.values():
            name = reg.information[0] if reg.information else ""
            if like_match(name, pattern):
                out.append(reg.handle)
        return sorted(out)

    def information_for(self, handle: str) -> list[str] | None:
        """Local accessor (not a PortType op) used by clients in-process."""
        self._sweep()
        reg = self._entries.get(handle)
        return list(reg.information) if reg is not None else None

    def live_count(self) -> int:
        self._sweep()
        return len(self._entries)
