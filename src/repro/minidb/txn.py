"""Transactions: an undo-log implementation of BEGIN/COMMIT/ROLLBACK.

Single-connection, single-writer semantics (minidb is an embedded,
in-process engine): a transaction collects undo records for every row
mutation; rollback applies them in reverse.  Row compaction is deferred
while a transaction is open so recorded rowids stay valid, and DDL is
rejected inside transactions (undoing schema changes is out of scope —
the engine raises rather than pretending).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.minidb.errors import ProgrammingError

if TYPE_CHECKING:  # pragma: no cover
    from repro.minidb.storage import Table


class TransactionLog:
    """Undo records for one open transaction."""

    def __init__(self) -> None:
        #: entries are ("insert", table, rowid) | ("delete", table, rowid, row)
        #: | ("update", table, rowid, old_row)
        self._entries: list[tuple] = []
        #: tables that deferred a compaction during this transaction
        self._compaction_pending: set["Table"] = set()
        self.active = True

    def record_insert(self, table: "Table", rowid: int) -> None:
        self._entries.append(("insert", table, rowid))

    def record_delete(self, table: "Table", rowid: int, row: tuple) -> None:
        self._entries.append(("delete", table, rowid, row))

    def record_update(self, table: "Table", rowid: int, old_row: tuple) -> None:
        self._entries.append(("update", table, rowid, old_row))

    def defer_compaction(self, table: "Table") -> None:
        self._compaction_pending.add(table)

    def __len__(self) -> int:
        return len(self._entries)

    # ----------------------------------------------------------- lifecycle
    def commit(self) -> None:
        """Discard undo records and run deferred compactions."""
        self._require_active()
        self.active = False
        self._entries.clear()
        for table in self._compaction_pending:
            table.txn_log = None
            table.maybe_compact()
        self._compaction_pending.clear()

    def rollback(self) -> None:
        """Apply undo records in reverse order."""
        self._require_active()
        self.active = False
        for entry in reversed(self._entries):
            kind = entry[0]
            if kind == "insert":
                _, table, rowid = entry
                table.undo_insert(rowid)
            elif kind == "delete":
                _, table, rowid, row = entry
                table.undo_delete(rowid, row)
            else:
                _, table, rowid, old_row = entry
                table.undo_update(rowid, old_row)
        self._entries.clear()
        for table in self._compaction_pending:
            table.txn_log = None
            table.maybe_compact()
        self._compaction_pending.clear()

    def _require_active(self) -> None:
        if not self.active:
            raise ProgrammingError("transaction is no longer active")
