"""Columnar batch encoding for bulk chunk payloads.

Per-row XML is the dominant hot-path cost in chunked transfers (ablation
A1, ``bench_streaming``): every packed row becomes one ``<item>`` element
whose build/escape/parse cost and ~35-byte framing are paid per row.  A
*colbatch* carries the same rows as a handful of records — one
self-describing header plus one record per **column** — so the SOAP
layer's per-item cost is amortized over the whole chunk.

Layout (each "record" is one string in the SOAP array)::

    @colbatch|<version>|<nrows>|<nfields>|<nexceptions>
    <column record> x nfields
    @xrows|<idx>:<row>;...          (only when nexceptions > 0)

Rows are split on ``|`` (the packed-record field separator); the first
row fixes ``nfields`` and every row with a different arity is carried
verbatim in the ``@xrows`` exceptions record, so *any* string round-trips
byte-identically — the columnar fast path is an optimization, never an
assumption.  A column record is ``<enc>|<nulls>|<payload...>`` where
``nulls`` is ``-`` or a 6-bit-per-char bitmap flagging empty-string
tokens (excluded from the payload), and ``enc`` is one of:

``const``
    every non-null token is the same string (metric/type columns);
``dict``
    dictionary: distinct tokens in first-appearance order plus
    fixed-width packed indexes (focus and quantized value columns);
``fxp``
    fixed-point numbers of one scale (the ``%.9f`` time columns),
    stored as first value + run-length-encoded integer deltas;
``spn``
    time spans ``<start>-<end>`` where both halves are non-negative
    fixed-point literals, stored as two ``fxp`` series (the packed
    ``start-end`` column every :meth:`PerformanceResult.pack` row has);
``f64``
    floats in shortest-``repr`` form (``nan``/``inf`` included), packed
    as base64 IEEE doubles;
``raw``
    escaped tokens, ``;``-joined — the always-available fallback.

Every variable-content field is %-escaped (``%``, ``;``, ``|``) so the
structural separators stay unambiguous; ``fxp``/``f64`` eligibility is
validated token-by-token against exact re-rendering, so decoding is
guaranteed to reproduce the original bytes.  :func:`decode_batch`
validates every length, index, and count and raises
:class:`~repro.soap.chunks.ChunkError` on any malformed input — a
corrupted batch never crashes the decoder or silently drops rows.
"""

from __future__ import annotations

import base64
import re
import struct
from functools import lru_cache
from typing import Iterable, Sequence

from repro.soap.chunks import ChunkError

#: first field of every batch header record
BATCH_MAGIC = "@colbatch"

#: first field of the verbatim-exceptions record
XROWS_MAGIC = "@xrows"

#: current batch format version (bumped on any layout change)
COLBATCH_VERSION = 1

#: dictionary columns hold at most this many distinct tokens; columns
#: with higher cardinality fall back to ``f64``/``raw``
DICT_MAX = 4096

#: decoder bound on ``fxp`` scale — wire values beyond it are corrupt
_FXP_MAX_SCALE = 60

_B64 = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"
_B64_INDEX = {char: value for value, char in enumerate(_B64)}


def _escape(text: str) -> str:
    """Escape the structural separators (order matters: ``%`` first)."""
    return text.replace("%", "%25").replace(";", "%3B").replace("|", "%7C")


def _unescape(text: str) -> str:
    """Inverse of :func:`_escape` (reverse order)."""
    return text.replace("%7C", "|").replace("%3B", ";").replace("%25", "%")


# ------------------------------------------------------------ bit packing
def _pack_bits(flags: Sequence[bool]) -> str:
    """Pack booleans 6 per char, LSB-first within each char."""
    out = []
    for group in range(0, len(flags), 6):
        value = 0
        for bit, flag in enumerate(flags[group : group + 6]):
            if flag:
                value |= 1 << bit
        out.append(_B64[value])
    return "".join(out)


def _unpack_bits(packed: str, count: int) -> list[bool]:
    if len(packed) != (count + 5) // 6:
        raise ChunkError(
            f"null bitmap holds {len(packed) * 6} slot(s), column needs {count}"
        )
    flags: list[bool] = []
    for char in packed:
        value = _B64_INDEX.get(char)
        if value is None:
            raise ChunkError(f"bad null-bitmap character {char!r}")
        for bit in range(6):
            flags.append(bool(value >> bit & 1))
    for spare in flags[count:]:
        if spare:
            raise ChunkError("null bitmap sets bits past the column length")
    return flags[:count]


def _index_width(size: int) -> int:
    """Chars per packed dictionary index for a *size*-entry dictionary."""
    if size <= 64:
        return 1
    if size <= 64 * 64:
        return 2
    return 3


def _pack_indexes(indexes: Iterable[int], size: int) -> str:
    width = _index_width(size)
    if width == 1:
        return "".join(_B64[i] for i in indexes)
    if width == 2:
        return "".join(_B64[i >> 6] + _B64[i & 63] for i in indexes)
    return "".join(
        _B64[i >> 12] + _B64[(i >> 6) & 63] + _B64[i & 63] for i in indexes
    )


def _unpack_indexes(packed: str, count: int, size: int) -> list[int]:
    width = _index_width(size)
    if len(packed) != width * count:
        raise ChunkError(
            f"dict column declares {count} index(es) of width {width}, "
            f"carries {len(packed)} char(s)"
        )
    try:
        if width == 1:
            indexes = [_B64_INDEX[c] for c in packed]
        elif width == 2:
            indexes = [
                _B64_INDEX[packed[i]] << 6 | _B64_INDEX[packed[i + 1]]
                for i in range(0, len(packed), 2)
            ]
        else:
            indexes = [
                _B64_INDEX[packed[i]] << 12
                | _B64_INDEX[packed[i + 1]] << 6
                | _B64_INDEX[packed[i + 2]]
                for i in range(0, len(packed), 3)
            ]
    except KeyError as exc:
        raise ChunkError(f"bad dict-index character {exc.args[0]!r}") from exc
    for index in indexes:
        if index >= size:
            raise ChunkError(
                f"dict index {index} out of range for {size}-entry dictionary"
            )
    return indexes


# ------------------------------------------------------------ fixed point
def _fxp_render(value: int, scale: int) -> str:
    if scale == 0:
        return str(value)
    sign = ""
    if value < 0:
        sign = "-"
        value = -value
    digits = str(value)
    if len(digits) <= scale:
        return f"{sign}0.{digits.zfill(scale)}"
    return f"{sign}{digits[:-scale]}.{digits[-scale:]}"


@lru_cache(maxsize=64)
def _fxp_pattern(scale: int) -> "re.Pattern[str]":
    """Canonical fixed-point literal of *scale* fractional digits (no
    leading zeros, exact fraction width; ``-0`` is screened by caller)."""
    if scale == 0:
        return re.compile(r"-?(?:0|[1-9][0-9]*)")
    return re.compile(r"-?(?:0|[1-9][0-9]*)\.[0-9]{%d}" % scale)


def _fxp_series(tokens: list[str]) -> tuple[int, list[int]] | None:
    """Parse *tokens* as one fixed-point series (scale from the first
    token); None when any token does not round-trip at that scale."""
    first = tokens[0]
    dot = first.find(".")
    scale = 0 if dot < 0 else len(first) - dot - 1
    if scale > _FXP_MAX_SCALE:
        return None
    match = _fxp_pattern(scale).fullmatch
    values = []
    for token in tokens:
        if match(token) is None:
            return None
        value = int(token.replace(".", "", 1))
        if value == 0 and token[0] == "-":  # "-0.000" does not re-render
            return None
        values.append(value)
    return scale, values


def _rle_deltas(values: list[int]) -> str:
    """Run-length-encode consecutive deltas: ``d`` or ``d*count``."""
    runs: list[str] = []
    run_delta: int | None = None
    run_count = 0
    for i in range(1, len(values)):
        delta = values[i] - values[i - 1]
        if delta == run_delta:
            run_count += 1
        else:
            if run_delta is not None:
                runs.append(str(run_delta) if run_count == 1 else f"{run_delta}*{run_count}")
            run_delta, run_count = delta, 1
    if run_delta is not None:
        runs.append(str(run_delta) if run_count == 1 else f"{run_delta}*{run_count}")
    return ";".join(runs)


def _try_fxp(tokens: list[str], nulls: str) -> str | None:
    series = _fxp_series(tokens)
    if series is None:
        return None
    scale, values = series
    return f"fxp|{nulls}|{scale}|{values[0]}|{_rle_deltas(values)}"


def _try_spn(tokens: list[str], nulls: str) -> str | None:
    """Span column ``<start>-<end>``: both halves non-negative fixed
    point (splitting on ``-`` leaves no room for signs)."""
    starts: list[str] = []
    ends: list[str] = []
    for token in tokens:
        head, sep, tail = token.partition("-")
        if not sep or not head or not tail or "-" in tail:
            return None
        starts.append(head)
        ends.append(tail)
    start_series = _fxp_series(starts)
    if start_series is None:
        return None
    end_series = _fxp_series(ends)
    if end_series is None:
        return None
    start_scale, start_values = start_series
    end_scale, end_values = end_series
    return (
        f"spn|{nulls}|{start_scale}|{start_values[0]}|{_rle_deltas(start_values)}"
        f"|{end_scale}|{end_values[0]}|{_rle_deltas(end_values)}"
    )


def _try_f64(tokens: list[str], nulls: str) -> str | None:
    floats = []
    for token in tokens:
        try:
            value = float(token)
        except ValueError:
            return None
        if repr(value) != token:
            return None
        floats.append(value)
    packed = base64.b64encode(struct.pack(f"<{len(floats)}d", *floats))
    return f"f64|{nulls}|{packed.decode('ascii')}"


# ------------------------------------------------------------- encoding
def _encode_column(tokens: list[str]) -> str:
    null_flags = [token == "" for token in tokens]
    if any(null_flags):
        nulls = _pack_bits(null_flags)
        values = [token for token in tokens if token]
    else:
        nulls = "-"
        values = tokens
    if not values:
        return f"const|{nulls}|"
    first = values[0]
    if all(value == first for value in values):
        return f"const|{nulls}|{_escape(first)}"
    if first and (first[0].isdigit() or first[0] == "-"):
        fxp = _try_fxp(values, nulls)
        if fxp is not None:
            return fxp
        if "-" in first:
            spn = _try_spn(values, nulls)
            if spn is not None:
                return spn
    distinct = list(dict.fromkeys(values))
    size = len(distinct)
    if size <= DICT_MAX and size * 2 <= len(values):
        index_of = {value: i for i, value in enumerate(distinct)}
        entries = ";".join(_escape(value) for value in distinct)
        packed = _pack_indexes((index_of[value] for value in values), size)
        return f"dict|{nulls}|{entries}|{packed}"
    f64 = _try_f64(values, nulls)
    if f64 is not None:
        return f64
    return f"raw|{nulls}|" + ";".join(_escape(value) for value in values)


def encode_batch(rows: Sequence[str]) -> list[str]:
    """Encode *rows* as colbatch records (header first).

    Decoding the result with :func:`decode_batch` reproduces *rows*
    byte-identically for any input strings.
    """
    rows = list(rows)
    nrows = len(rows)
    if nrows == 0:
        return [f"{BATCH_MAGIC}|{COLBATCH_VERSION}|0|0|0"]
    split_rows = [row.split("|") for row in rows]
    nfields = len(split_rows[0])
    matrix: list[list[str]] = []
    exceptions: list[tuple[int, str]] = []
    for i, parts in enumerate(split_rows):
        if len(parts) == nfields:
            matrix.append(parts)
        else:
            exceptions.append((i, rows[i]))
    records = [
        f"{BATCH_MAGIC}|{COLBATCH_VERSION}|{nrows}|{nfields}|{len(exceptions)}"
    ]
    for column in range(nfields):
        records.append(_encode_column([parts[column] for parts in matrix]))
    if exceptions:
        records.append(
            f"{XROWS_MAGIC}|"
            + ";".join(f"{i}:{_escape(row)}" for i, row in exceptions)
        )
    return records


# ------------------------------------------------------------- decoding
def _decode_fxp_series(
    scale_text: str, first_text: str, runs_text: str, present: int
) -> list[str]:
    """Expand one fixed-point series (first value + RLE deltas) back to
    its rendered tokens; every count is validated against *present*."""
    try:
        scale = int(scale_text)
    except ValueError as exc:
        raise ChunkError(f"bad fxp scale {scale_text!r}") from exc
    if not 0 <= scale <= _FXP_MAX_SCALE:
        raise ChunkError(f"fxp scale {scale} out of range")
    if present == 0:
        return []
    try:
        current = int(first_text)
    except ValueError as exc:
        raise ChunkError(f"bad fxp first value {first_text!r}") from exc
    numbers = [current]
    need = present - 1
    got = 0
    for item in runs_text.split(";") if runs_text else []:
        delta_text, star, count_text = item.partition("*")
        try:
            delta = int(delta_text)
            count = int(count_text) if star else 1
        except ValueError as exc:
            raise ChunkError(f"bad fxp delta run {item!r}") from exc
        if count < 1 or got + count > need:
            raise ChunkError(
                f"fxp column declares {need} delta(s), run {item!r} overflows"
            )
        for _ in range(count):
            current += delta
            numbers.append(current)
        got += count
    if got != need:
        raise ChunkError(
            f"fxp column declares {need} delta(s) but carries {got}"
        )
    return [_fxp_render(number, scale) for number in numbers]


def _decode_column(record: str, nrows: int) -> list[str]:
    parts = record.split("|")
    if len(parts) < 3:
        raise ChunkError(f"bad colbatch column record {record!r}")
    encoding, nulls_field = parts[0], parts[1]
    if nulls_field == "-":
        null_flags = None
        present = nrows
    else:
        null_flags = _unpack_bits(nulls_field, nrows)
        present = nrows - sum(null_flags)

    if encoding == "const":
        if len(parts) != 3:
            raise ChunkError(f"bad const column record {record!r}")
        values = [_unescape(parts[2])] * present
    elif encoding == "raw":
        if len(parts) != 3:
            raise ChunkError(f"bad raw column record {record!r}")
        items = parts[2].split(";") if parts[2] else []
        if len(items) != present:
            raise ChunkError(
                f"raw column carries {len(items)} token(s), expected {present}"
            )
        values = [_unescape(item) for item in items]
    elif encoding == "dict":
        if len(parts) != 4:
            raise ChunkError(f"bad dict column record {record!r}")
        entries = [_unescape(e) for e in parts[2].split(";")] if parts[2] else []
        if not entries and present:
            raise ChunkError("dict column has indexes but no dictionary")
        indexes = _unpack_indexes(parts[3], present, len(entries))
        values = [entries[i] for i in indexes]
    elif encoding == "fxp":
        if len(parts) != 5:
            raise ChunkError(f"bad fxp column record {record!r}")
        values = _decode_fxp_series(parts[2], parts[3], parts[4], present)
    elif encoding == "spn":
        if len(parts) != 8:
            raise ChunkError(f"bad spn column record {record!r}")
        starts = _decode_fxp_series(parts[2], parts[3], parts[4], present)
        ends = _decode_fxp_series(parts[5], parts[6], parts[7], present)
        values = [f"{start}-{end}" for start, end in zip(starts, ends)]
    elif encoding == "f64":
        if len(parts) != 3:
            raise ChunkError(f"bad f64 column record {record!r}")
        try:
            data = base64.b64decode(parts[2], validate=True)
        except Exception as exc:
            raise ChunkError(f"bad f64 column payload: {exc}") from exc
        if len(data) != 8 * present:
            raise ChunkError(
                f"f64 column carries {len(data)} byte(s), expected {8 * present}"
            )
        values = [repr(value) for value in struct.unpack(f"<{present}d", data)]
    else:
        raise ChunkError(f"unknown column encoding {encoding!r}")

    if null_flags is None:
        return values
    filled = iter(values)
    return ["" if is_null else next(filled) for is_null in null_flags]


def _decode_exceptions(record: str, nexc: int, nrows: int) -> dict[int, str]:
    magic, sep, payload = record.partition("|")
    if magic != XROWS_MAGIC or not sep:
        raise ChunkError(f"bad colbatch exceptions record {record!r}")
    items = payload.split(";") if payload else []
    if len(items) != nexc:
        raise ChunkError(
            f"colbatch declares {nexc} exception row(s) but carries {len(items)}"
        )
    out: dict[int, str] = {}
    previous = -1
    for item in items:
        index_text, sep2, row_text = item.partition(":")
        try:
            index = int(index_text)
        except ValueError as exc:
            raise ChunkError(f"bad exception row index {index_text!r}") from exc
        if not sep2 or index <= previous or index >= nrows:
            raise ChunkError(
                f"exception row index {index_text!r} out of order or range"
            )
        previous = index
        out[index] = _unescape(row_text)
    return out


def decode_batch(records: Sequence[str]) -> list[str]:
    """Decode colbatch *records* back to the original row strings.

    Raises :class:`~repro.soap.chunks.ChunkError` on any malformed
    input — truncation, corrupted counts, bad indexes, wrong version.
    """
    records = list(records)
    if not records:
        raise ChunkError("empty colbatch payload (missing batch header)")
    header = records[0]
    parts = header.split("|")
    if len(parts) != 5 or parts[0] != BATCH_MAGIC:
        raise ChunkError(f"bad colbatch header {header!r}")
    try:
        version, nrows, nfields, nexc = (int(part) for part in parts[1:])
    except ValueError as exc:
        raise ChunkError(f"bad colbatch header {header!r}: {exc}") from exc
    if version != COLBATCH_VERSION:
        raise ChunkError(
            f"unsupported colbatch version {version} "
            f"(this decoder speaks version {COLBATCH_VERSION})"
        )
    if nrows < 0 or nfields < 0 or not 0 <= nexc <= nrows:
        raise ChunkError(f"inconsistent colbatch header {header!r}")
    if (nrows == 0) != (nfields == 0):
        raise ChunkError(f"inconsistent colbatch header {header!r}")
    expected = 1 + nfields + (1 if nexc else 0)
    if len(records) != expected:
        raise ChunkError(
            f"colbatch declares {expected} record(s) but carries {len(records)}"
        )
    if nrows == 0:
        return []
    body_rows = nrows - nexc
    columns = [_decode_column(record, body_rows) for record in records[1 : 1 + nfields]]
    body = ["|".join(fields) for fields in zip(*columns)]
    if not nexc:
        return body
    exceptions = _decode_exceptions(records[-1], nexc, nrows)
    out: list[str] = []
    body_index = 0
    for i in range(nrows):
        exception = exceptions.get(i)
        if exception is None:
            out.append(body[body_index])
            body_index += 1
        else:
            out.append(exception)
    return out
