"""Table schema definitions."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.minidb.errors import ProgrammingError
from repro.minidb.types import SqlType


@dataclass(frozen=True)
class ColumnDef:
    """One column: name, declared type, constraints."""

    name: str
    sql_type: SqlType
    primary_key: bool = False
    not_null: bool = False


@dataclass
class TableSchema:
    """Schema of a table; column order is significant."""

    name: str
    columns: list[ColumnDef] = field(default_factory=list)

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for col in self.columns:
            low = col.name.lower()
            if low in seen:
                raise ProgrammingError(f"duplicate column {col.name!r} in table {self.name!r}")
            seen.add(low)
        if sum(1 for c in self.columns if c.primary_key) > 1:
            raise ProgrammingError(f"table {self.name!r} declares multiple primary keys")

    def column_index(self, name: str) -> int:
        low = name.lower()
        for i, col in enumerate(self.columns):
            if col.name.lower() == low:
                return i
        raise ProgrammingError(f"no column {name!r} in table {self.name!r}")

    def column(self, name: str) -> ColumnDef:
        return self.columns[self.column_index(name)]

    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    @property
    def primary_key(self) -> ColumnDef | None:
        for col in self.columns:
            if col.primary_key:
                return col
        return None
