"""Tests for site wiring (PPerfGridSite) and the grid builder."""

import pytest

from repro.core import PPerfGridClient, PPerfGridSite, SiteConfig
from repro.core.prcache import NullCache
from repro.datastores import generate_hpl
from repro.mapping import HplRdbmsWrapper
from repro.ogsi import GridEnvironment, GridServiceHandle
from repro.simnet.host import SimHost


@pytest.fixture()
def env():
    return GridEnvironment()


@pytest.fixture()
def wrapper():
    return HplRdbmsWrapper(generate_hpl(num_executions=5).to_database())


class TestSiteWiring:
    def test_deploys_factories_and_manager(self, env, wrapper):
        PPerfGridSite(env, SiteConfig("s:1", "HPL"), wrapper)
        container = env.container_for("s:1")
        paths = container.service_paths()
        assert "services/HPL/ApplicationFactory" in paths
        assert "services/HPL/ExecutionFactory" in paths
        assert "services/HPL/Manager" in paths

    def test_two_apps_share_a_container(self, env, wrapper):
        PPerfGridSite(env, SiteConfig("s:1", "HPL"), wrapper)
        other = HplRdbmsWrapper(generate_hpl(seed=9, num_executions=3).to_database())
        PPerfGridSite(env, SiteConfig("s:1", "HPL2"), other)
        container = env.container_for("s:1")
        assert "services/HPL2/ApplicationFactory" in container.service_paths()

    def test_factory_url_points_at_application_factory(self, env, wrapper):
        site = PPerfGridSite(env, SiteConfig("s:1", "HPL"), wrapper)
        gsh = GridServiceHandle.parse(site.factory_url)
        assert gsh.path == "services/HPL/ApplicationFactory"

    def test_instance_lifetime_propagates(self, env, wrapper):
        from repro.simnet.clock import VirtualClock

        venv = GridEnvironment(clock=VirtualClock())
        site = PPerfGridSite(
            venv, SiteConfig("s:1", "HPL", instance_lifetime=30.0), wrapper
        )
        client = PPerfGridClient(venv)
        app = client.bind(site.factory_url, "HPL")
        executions = app.all_executions()
        venv.clock.advance(31.0)
        assert venv.sweep_expired() >= len(executions)

    def test_cache_factory_used(self, env, wrapper):
        site = PPerfGridSite(
            env, SiteConfig("s:1", "HPL", cache_factory=NullCache), wrapper
        )
        client = PPerfGridClient(env)
        app = client.bind(site.factory_url, "HPL")
        execution = app.all_executions()[0]
        container = env.container_for("s:1")
        gsh = GridServiceHandle.parse(execution.gsh)
        service = container.service_at(gsh.path)
        assert isinstance(service.cache, NullCache)

    def test_timed_mapping_flag(self, env, wrapper):
        site = PPerfGridSite(
            env, SiteConfig("s:1", "HPL", timed_mapping=False), wrapper
        )
        client = PPerfGridClient(env)
        app = client.bind(site.factory_url, "HPL")
        app.all_executions()[0].get_pr("gflops", ["/Run"])
        assert env.recorder.timer("mapping.getPR").count == 0

    def test_replica_on_simhost(self, env, wrapper):
        host_a, host_b = SimHost("A"), SimHost("B")
        site = PPerfGridSite(env, SiteConfig("a:1", "HPL"), wrapper, host=host_a)
        site.add_replica("b:1", host=host_b)
        assert env.container_for("a:1").host is host_a
        assert env.container_for("b:1").host is host_b

    def test_replica_with_own_wrapper(self, env, wrapper):
        # A replicated data store has its own local copy.
        replica_wrapper = HplRdbmsWrapper(generate_hpl(num_executions=5).to_database())
        site = PPerfGridSite(env, SiteConfig("a:1", "HPL"), wrapper)
        site.add_replica("b:1", wrapper=replica_wrapper)
        client = PPerfGridClient(env)
        app = client.bind(site.factory_url, "HPL")
        executions = app.all_executions()
        values = {e.get_pr("gflops", ["/Run"])[0].value for e in executions}
        # Same seed -> identical data regardless of which replica serves.
        expected = {r["gflops"] for r in generate_hpl(num_executions=5).rows}
        assert values <= expected


class TestGridBuilder:
    def test_three_sites_published(self, shared_grid):
        services = shared_grid.uddi.all_services()
        assert sorted(s.name for s in services) == ["HPL", "PRESTA-RMA", "SMG98"]

    def test_scales(self, shared_grid):
        assert shared_grid.bind("HPL").num_executions() == 12
        assert shared_grid.bind("SMG98").num_executions() == 3
        assert shared_grid.bind("PRESTA-RMA").num_executions() == 4

    def test_sites_index(self, shared_grid):
        assert shared_grid.site("HPL") is shared_grid.hpl_site

    def test_cleanup_idempotent(self):
        from repro.experiments.common import GridScale, build_grid

        grid = build_grid(GridScale.tiny())
        grid.cleanup()
        grid.cleanup()
