"""Experiment drivers reproducing every table and figure of the thesis.

========================  =======================================
Driver                    Paper artifact
========================  =======================================
``porttypes``             Tables 1, 2, 3 (interface listings)
``overhead``              Table 4 (Grid services overhead)
``scalability``           Figure 12 (replica-host speedup)
``caching``               Table 5 (Performance-Result caching)
``ablations``             serialization / distribution / cache
                          policy studies (extensions)
========================  =======================================
"""

from repro.experiments.common import TestGrid, build_grid, GridScale
from repro.experiments.overhead import OverheadResult, OverheadRow, run_overhead_experiment
from repro.experiments.scalability import ScalabilityResult, run_scalability_experiment
from repro.experiments.caching import CachingResult, CachingRow, run_caching_experiment
from repro.experiments.porttypes import (
    render_table1,
    render_table2,
    render_table3,
)
from repro.experiments.ablations import (
    CachePolicyResult,
    DistributionResult,
    NetworkContentionResult,
    SerializationResult,
    run_cache_policy_ablation,
    run_distribution_ablation,
    run_network_contention_ablation,
    run_serialization_ablation,
)

__all__ = [
    "CachePolicyResult",
    "CachingResult",
    "CachingRow",
    "DistributionResult",
    "GridScale",
    "NetworkContentionResult",
    "OverheadResult",
    "OverheadRow",
    "ScalabilityResult",
    "SerializationResult",
    "TestGrid",
    "build_grid",
    "render_table1",
    "render_table2",
    "render_table3",
    "run_cache_policy_ablation",
    "run_caching_experiment",
    "run_distribution_ablation",
    "run_network_contention_ablation",
    "run_overhead_experiment",
    "run_scalability_experiment",
    "run_serialization_ablation",
]
