"""Synthetic SMG98 (Vampir-trace) dataset.

SMG98 is a semicoarsening multigrid solver; the thesis's dataset is a
Vampir trace imported into a five-table PostgreSQL schema (250 MB of
files; Mapping-Layer queries took ~66 s on 2004 hardware).  The synthetic
trace keeps the schema and the *relative* cost profile: per-execution
interval counts are large enough that a focus/time-window aggregation is
orders of magnitude slower than an indexed HPL lookup.

Schema (five tables, as in the thesis):

* ``executions(execid, rundate, numprocs, nx, ny, nz, runtime)``
* ``processes(procid, execid, rank, node)``
* ``functions(funcid, name, grp)``
* ``intervals(intervalid, execid, procid, funcid, start_ts, end_ts)``
* ``messages(msgid, execid, sender, receiver, send_ts, recv_ts, nbytes)``
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.minidb import Database

SMG98_METRICS = ("time_spent", "func_calls", "msg_count", "msg_bytes", "msg_deliv_time")
SMG98_ATTRIBUTES = ("execid", "rundate", "numprocs", "nx", "ny", "nz")

#: (function name, group) — MPI plus solver kernels, Vampir-style
SMG98_FUNCTIONS = (
    ("MPI_Allgather", "MPI"),
    ("MPI_Allreduce", "MPI"),
    ("MPI_Comm_rank", "MPI"),
    ("MPI_Comm_size", "MPI"),
    ("MPI_Irecv", "MPI"),
    ("MPI_Isend", "MPI"),
    ("MPI_Waitall", "MPI"),
    ("smg_relax", "SMG"),
    ("smg_restrict", "SMG"),
    ("smg_interp", "SMG"),
    ("smg_residual", "SMG"),
    ("main", "USER"),
    ("hypre_init", "USER"),
)


@dataclass
class Smg98Dataset:
    """Generated trace rows, one list per table."""

    executions: list[dict] = field(default_factory=list)
    processes: list[dict] = field(default_factory=list)
    functions: list[dict] = field(default_factory=list)
    intervals: list[dict] = field(default_factory=list)
    messages: list[dict] = field(default_factory=list)

    @property
    def num_executions(self) -> int:
        return len(self.executions)

    def to_database(self) -> Database:
        """Load into a fresh five-table minidb database."""
        db = Database("smg98")
        db.execute(
            "CREATE TABLE executions (execid INTEGER PRIMARY KEY, rundate TEXT, "
            "numprocs INTEGER, nx INTEGER, ny INTEGER, nz INTEGER, runtime REAL)"
        )
        db.execute(
            "CREATE TABLE processes (procid INTEGER PRIMARY KEY, execid INTEGER, "
            "rank INTEGER, node TEXT)"
        )
        db.execute("CREATE INDEX idx_proc_exec ON processes (execid)")
        db.execute(
            "CREATE TABLE functions (funcid INTEGER PRIMARY KEY, name TEXT, grp TEXT)"
        )
        # Deliberately no index on intervals.execid: the thesis's 66-second
        # Mapping-Layer queries over the 250 MB trace indicate the data
        # layer scanned, and the Table 4 shape (SMG98 mapping time >>
        # Grid-services overhead) depends on that access pattern.
        db.execute(
            "CREATE TABLE intervals (intervalid INTEGER PRIMARY KEY, execid INTEGER, "
            "procid INTEGER, funcid INTEGER, start_ts REAL, end_ts REAL)"
        )
        db.execute(
            "CREATE TABLE messages (msgid INTEGER PRIMARY KEY, execid INTEGER, "
            "sender INTEGER, receiver INTEGER, send_ts REAL, recv_ts REAL, nbytes INTEGER)"
        )
        db.execute("CREATE INDEX idx_msg_exec ON messages (execid)")

        def load(table: str, rows: list[dict]) -> None:
            if not rows:
                return
            cols = list(rows[0].keys())
            db.load_rows(table, cols, [tuple(row[c] for c in cols) for row in rows])

        load("executions", self.executions)
        load("processes", self.processes)
        load("functions", self.functions)
        load("intervals", self.intervals)
        load("messages", self.messages)
        return db


def generate_smg98(
    seed: int = 11,
    num_executions: int = 30,
    intervals_per_execution: int = 12000,
    messages_per_execution: int = 2000,
) -> Smg98Dataset:
    """Generate a trace dataset.

    ``intervals_per_execution`` is the knob that controls Mapping-Layer
    query cost; the default keeps a full Table 4 run under a minute while
    preserving SMG98 >> HPL query-time separation.
    """
    rng = random.Random(seed)
    ds = Smg98Dataset()
    ds.functions = [
        {"funcid": i + 1, "name": name, "grp": grp}
        for i, (name, grp) in enumerate(SMG98_FUNCTIONS)
    ]
    procid_counter = 0
    intervalid_counter = 0
    msgid_counter = 0
    for execid in range(1, num_executions + 1):
        numprocs = rng.choice((8, 16, 32, 64))
        nx = ny = nz = rng.choice((32, 64, 128))
        runtime = rng.uniform(30.0, 300.0)
        month = 1 + (execid * 5) % 12
        day = 1 + (execid * 11) % 28
        ds.executions.append(
            {
                "execid": execid,
                "rundate": f"2003-{month:02d}-{day:02d}",
                "numprocs": numprocs,
                "nx": nx,
                "ny": ny,
                "nz": nz,
                "runtime": round(runtime, 3),
            }
        )
        proc_ids: list[int] = []
        for rank in range(numprocs):
            procid_counter += 1
            proc_ids.append(procid_counter)
            ds.processes.append(
                {
                    "procid": procid_counter,
                    "execid": execid,
                    "rank": rank,
                    "node": f"node{rank // 2:03d}",
                }
            )
        # Intervals: MPI functions get many short calls, solver kernels
        # fewer long ones — weights approximate a real SMG98 profile.
        weights = [6, 5, 1, 1, 8, 8, 7, 10, 4, 4, 6, 1, 1]
        for _ in range(intervals_per_execution):
            intervalid_counter += 1
            funcidx = rng.choices(range(len(SMG98_FUNCTIONS)), weights=weights)[0]
            procid = rng.choice(proc_ids)
            start = rng.uniform(0.0, runtime * 0.98)
            grp = SMG98_FUNCTIONS[funcidx][1]
            duration = rng.expovariate(2000.0) if grp == "MPI" else rng.expovariate(200.0)
            ds.intervals.append(
                {
                    "intervalid": intervalid_counter,
                    "execid": execid,
                    "procid": procid,
                    "funcid": funcidx + 1,
                    "start_ts": round(start, 6),
                    "end_ts": round(min(runtime, start + duration), 6),
                }
            )
        for _ in range(messages_per_execution):
            msgid_counter += 1
            sender, receiver = rng.sample(range(numprocs), 2)
            send_ts = rng.uniform(0.0, runtime * 0.99)
            ds.messages.append(
                {
                    "msgid": msgid_counter,
                    "execid": execid,
                    "sender": sender,
                    "receiver": receiver,
                    "send_ts": round(send_ts, 6),
                    "recv_ts": round(send_ts + rng.expovariate(5000.0), 6),
                    "nbytes": rng.choice((1024, 8192, 65536, 262144)),
                }
            )
    return ds
