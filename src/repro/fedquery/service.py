"""The FederatedQuery Grid service.

Exposes the federation engine as an OGSI PortType, so any SOAP client
can run declarative queries over every published Application without
binding them one by one — the natural extension of the thesis's "single
interface to heterogeneous stores" to a *single interface to the whole
federation*.
"""

from __future__ import annotations

from repro.core.semantic import PPERFGRID_NS
from repro.fedquery.executor import FederationEngine
from repro.fedquery.merge import pack_bounds
from repro.ogsi.cursor import deploy_cursor
from repro.ogsi.porttypes import GRID_SERVICE_PORTTYPE
from repro.ogsi.service import GridServiceBase
from repro.soap.chunks import WIRE_ENCODINGS
from repro.wsdl.porttype import Operation, Parameter, PortType

FEDERATED_QUERY_PORTTYPE = PortType(
    name="FederatedQuery",
    namespace=PPERFGRID_NS,
    doc=(
        "Declarative queries over the federation of published "
        "Applications: predicates push down to the member stores, "
        "sub-queries fan out in parallel, and whole-query results are "
        "memoized on a canonical query fingerprint."
    ),
    operations=(
        Operation(
            "query",
            (Parameter("queryText", "xsd:string"),),
            "xsd:string[]",
            doc=(
                "Plan and execute a federated query (SELECT ... FROM ... "
                "WHERE ... GROUP BY ...). Returns one string per result "
                "row, each a '|'-delimited list of column=value fields."
            ),
        ),
        Operation(
            "queryApprox",
            (
                Parameter("queryText", "xsd:string"),
                Parameter("tolerance", "xsd:string"),
            ),
            "xsd:string[]",
            doc=(
                "Approximate federated aggregate query: eligible members "
                "are answered at tier 0 from merged metric sketches "
                "(zero member round-trips), the rest fall back to the "
                "exact paths. Returns the packed result rows followed by "
                "'@bounds|row|label|lo|hi' records giving each inexact "
                "cell's sound error interval. 'tolerance' caps the "
                "worst per-cell relative error a sketch answer may carry "
                "('' = no cap); members over the cap fall back to exact."
            ),
        ),
        Operation(
            "queryChunked",
            (Parameter("queryText", "xsd:string"),),
            "xsd:string",
            doc=(
                "Plan and execute a federated query through a "
                "ResultCursor: returns the GSH of a cursor whose "
                "next(maxRows)/close() operations drain the result "
                "incrementally, in exactly the order 'query' returns it. "
                "Member rows flow chunk by chunk with bounded memory at "
                "every hop; closing the cursor (or letting its soft-state "
                "lifetime lapse) releases the member streams."
            ),
        ),
        Operation(
            "explainQuery",
            (Parameter("queryText", "xsd:string"),),
            "xsd:string[]",
            doc=(
                "Compile a federated query and return the plan as text "
                "lines — push-down terms per member, chosen mode, and "
                "pruned members — without executing it."
            ),
        ),
        Operation(
            "explainPlan",
            (Parameter("queryText", "xsd:string"),),
            "xsd:string[]",
            doc=(
                "Compile a federated query with the cost model and "
                "return the cost-annotated plan: per-member modes "
                "(raw/aggregate/mixed) with estimated record and byte "
                "volumes, members skipped because statistics prove they "
                "cannot contribute, the federation-wide effective mode, "
                "and the estimated transfer total."
            ),
        ),
        Operation(
            "getCacheStats",
            (),
            "xsd:string[]",
            doc=(
                "Plan-cache counters as 'name|value' records: hits, "
                "misses, evictions, lookups, hitRate, entries."
            ),
        ),
        Operation(
            "invalidateCache",
            (),
            "xsd:int",
            doc=(
                "Drop all memoized query results (e.g. after a member "
                "data store is updated). Returns the number of entries "
                "dropped."
            ),
        ),
        Operation(
            "subscribeUpdates",
            (),
            "xsd:int",
            doc=(
                "Deploy a NotificationSink next to the engine and "
                "subscribe it to every member Execution's data-update "
                "topic, so a store update invalidates exactly the cached "
                "plans that read it. Idempotent; returns the number of "
                "new subscriptions made."
            ),
        ),
        Operation(
            "coherenceStats",
            (),
            "xsd:string[]",
            doc=(
                "Cache-coherence counters as 'name|value' records: "
                "subscriptions, notifications, invalidations, "
                "fullClears, memberClears, staleDiscards, "
                "statsInvalidations, statsDeltas, trackedPlans."
            ),
        ),
        Operation(
            "viewStats",
            (),
            "xsd:string[]",
            doc=(
                "View-maintenance counters as 'name|value' records: "
                "views, created, dropped, deltasApplied, "
                "deltaRowsFetched, deltaBytesFetched, scopedRecomputes, "
                "epochRefreshes, noopUpdates, pushedDeltas, "
                "maintenanceErrors."
            ),
        ),
    ),
    extends=(GRID_SERVICE_PORTTYPE,),
)


class FederatedQueryService(GridServiceBase):
    """One federation endpoint backed by a :class:`FederationEngine`."""

    porttype = FEDERATED_QUERY_PORTTYPE

    def __init__(self, engine: FederationEngine) -> None:
        super().__init__()
        self.engine = engine
        #: wire encodings queryChunked cursors may serve (negotiated per
        #: cursor; ``("xml",)`` pins this endpoint to per-row transfers)
        self.wire_encodings: tuple[str, ...] = WIRE_ENCODINGS

    def on_deployed(self, container, gsh) -> None:
        super().on_deployed(container, gsh)
        self._publish_cache_stats()

    # --------------------------------------------------------- operations
    def query(self, queryText: str) -> list[str]:
        self.require_active()
        result = self.engine.execute(queryText)
        return [row.pack() for row in result.rows]

    def queryApprox(self, queryText: str, tolerance: str = "") -> list[str]:
        """Approximate query; rows then ``@bounds`` records (see wire doc)."""
        self.require_active()
        result = self.engine.execute(
            queryText,
            approx=True,
            tolerance=float(tolerance) if str(tolerance).strip() else None,
        )
        packed = [row.pack() for row in result.rows]
        packed.extend(pack_bounds(result.error_bounds))
        return packed

    def queryChunked(self, queryText: str) -> str:
        """Streamed query: deploy a ResultCursor over the engine's
        streamed execution and hand back its GSH.

        The cursor's row source is the engine's incremental merge, so
        member chunks are pulled only as the client drains — closing the
        cursor early (or expiry) closes the member streams with it.
        """
        self.require_active()
        if self.container is None:
            raise RuntimeError("FederatedQuery service is not deployed")
        streamed = self.engine.execute(queryText, stream=True)
        assert self.gsh is not None
        gsh = deploy_cursor(
            self.container,
            self.gsh.path,
            (row.pack() for row in streamed),
            on_close=streamed.close,
            encodings=self.wire_encodings,
        )
        return gsh.url()

    def explainQuery(self, queryText: str) -> list[str]:
        self.require_active()
        return self.engine.explain(queryText).splitlines()

    def explainPlan(self, queryText: str) -> list[str]:
        self.require_active()
        return self.engine.explain_plan(queryText)

    def getCacheStats(self) -> list[str]:
        self.require_active()
        return self._cache_records()

    def invalidateCache(self) -> int:
        self.require_active()
        return self.engine.invalidate_cache()

    def subscribeUpdates(self) -> int:
        self.require_active()
        if self.container is None:
            raise RuntimeError("FederatedQuery service is not deployed")
        return self.engine.enable_coherence(self.container)

    def coherenceStats(self) -> list[str]:
        self.require_active()
        return [f"{k}|{v}" for k, v in sorted(self.engine.coherence_stats().items())]

    def viewStats(self) -> list[str]:
        self.require_active()
        return [f"{k}|{v}" for k, v in sorted(self.engine.view_stats().items())]

    # ---------------------------------------------------------------- SDEs
    def _cache_records(self) -> list[str]:
        cache = self.engine.plan_cache
        records = cache.stats.as_records()
        records.append(f"entries|{len(cache)}")
        if hasattr(cache, "approx_bytes"):
            records.append(f"bytesUsed|{cache.approx_bytes}")
            records.append(f"maxBytes|{cache.max_bytes}")
        return records

    def _publish_cache_stats(self) -> None:
        self.service_data.set("planCacheStats", self._cache_records())
        self.service_data.set(
            "coherenceStats",
            [f"{k}|{v}" for k, v in sorted(self.engine.coherence_stats().items())],
        )
        self.service_data.set(
            "viewStats",
            [f"{k}|{v}" for k, v in sorted(self.engine.view_stats().items())],
        )

    def FindServiceData(self, queryExpression: str) -> str:
        self._publish_cache_stats()
        return super().FindServiceData(queryExpression)
