"""Client-side UDDI proxy classes (the UDDI4J-analog of §5.5.1).

``UddiClient`` wraps a registry stub; ``OrganizationProxy`` /
``ServiceProxy`` give publishers and consumers typed views over the
packed wire records.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ogsi.container import GridEnvironment
from repro.ogsi.gsh import GridServiceHandle
from repro.uddi.registry_server import UDDI_PORTTYPE, OrganizationEntry, ServiceEntry
from repro.wsdl.stubgen import ClientStub


@dataclass
class ServiceProxy:
    """A consumer's view of one published Service entry."""

    entry: ServiceEntry

    @property
    def name(self) -> str:
        return self.entry.name

    @property
    def factory_url(self) -> str:
        return self.entry.factory_url

    @property
    def description(self) -> str:
        return self.entry.description


@dataclass
class OrganizationProxy:
    """A consumer's view of one Organization and its Services."""

    entry: OrganizationEntry
    _client: "UddiClient"

    @property
    def name(self) -> str:
        return self.entry.name

    @property
    def contact(self) -> str:
        return self.entry.contact

    def services(self) -> list[ServiceProxy]:
        records = self._client.stub.getServices(self.entry.org_key)
        return [ServiceProxy(ServiceEntry.unpack(r)) for r in records]


class UddiClient:
    """Typed facade over a UDDI registry stub."""

    def __init__(self, stub: ClientStub) -> None:
        self.stub = stub

    @staticmethod
    def connect(environment: GridEnvironment, registry_handle: str | GridServiceHandle) -> "UddiClient":
        stub = environment.stub_for_handle(registry_handle, UDDI_PORTTYPE)
        return UddiClient(stub)

    # ----------------------------------------------------------- publisher
    def publish_organization(self, name: str, contact: str = "", description: str = "") -> str:
        return self.stub.publishOrganization(name, contact, description)

    def publish_service(
        self, org_key: str, name: str, factory_url: str, description: str = ""
    ) -> str:
        return self.stub.publishService(org_key, name, factory_url, description)

    # ------------------------------------------------------------ consumer
    def find_organizations(self, name_pattern: str = "%") -> list[OrganizationProxy]:
        records = self.stub.findOrganizations(name_pattern)
        return [OrganizationProxy(OrganizationEntry.unpack(r), self) for r in records]

    def all_services(self) -> list[ServiceProxy]:
        out: list[ServiceProxy] = []
        for org in self.find_organizations("%"):
            out.extend(org.services())
        return out
