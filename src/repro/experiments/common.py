"""Shared experiment scaffolding: build a grid with the three data sources.

Mirrors the thesis's testbed (§6.1-§6.3): the HPL and SMG98 stores in
relational databases, PRESTA RMA in flat text files, all published
through one UDDI registry.  ``GridScale`` controls dataset sizes so unit
tests stay fast while benchmarks run at paper proportions.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field

from repro.core.client import PPerfGridClient
from repro.core.prcache import NullCache, UnboundedCache
from repro.core.session import PPerfGridSite, SiteConfig
from repro.datastores.generators.hpl import generate_hpl
from repro.datastores.generators.presta import generate_presta
from repro.datastores.generators.smg98 import generate_smg98
from repro.datastores.textfiles import TextFileStore
from repro.mapping.rdbms import HplRdbmsWrapper, Smg98RdbmsWrapper
from repro.mapping.textfile import PrestaTextWrapper
from repro.ogsi.container import GridEnvironment
from repro.simnet.host import SimHost
from repro.uddi.proxy import UddiClient
from repro.uddi.registry_server import UddiRegistryServer


@dataclass(frozen=True)
class GridScale:
    """Dataset sizes for one grid build."""

    hpl_executions: int = 124
    smg98_executions: int = 30
    smg98_intervals: int = 12000
    smg98_messages: int = 2000
    presta_executions: int = 32
    seed: int = 7

    @staticmethod
    def tiny() -> "GridScale":
        """Unit-test scale: everything small."""
        return GridScale(
            hpl_executions=12,
            smg98_executions=3,
            smg98_intervals=400,
            smg98_messages=100,
            presta_executions=4,
        )

    @staticmethod
    def paper() -> "GridScale":
        """Benchmark scale (paper proportions)."""
        return GridScale()


@dataclass
class TestGrid:
    """A fully wired grid: three sites, registry, client."""

    environment: GridEnvironment
    uddi: UddiClient
    uddi_gsh: str
    hpl_site: PPerfGridSite
    smg98_site: PPerfGridSite
    presta_site: PPerfGridSite
    client: PPerfGridClient
    scale: GridScale
    #: holds the presta temp directory alive for the grid's lifetime
    _tempdir: tempfile.TemporaryDirectory | None = None
    sites: dict[str, PPerfGridSite] = field(default_factory=dict)
    #: set by deploy_federation()
    fed_gsh: str | None = None
    fed_engine: object | None = None
    views_gsh: str | None = None

    def site(self, name: str) -> PPerfGridSite:
        return self.sites[name]

    def deploy_federation(
        self,
        authority: str = "fed.pdx.edu:9090",
        coherence: bool = True,
        cost_based: bool = True,
    ):
        """Deploy a FederatedQuery service over this grid's members.

        The federation endpoint is itself a Grid-service *client* of the
        member Applications: it gets its own PPerfGridClient against the
        registry, and the site Managers feed its fan-out sizing.  The
        grid's main client is pointed at the deployed service, so
        ``grid.client.query(...)`` works afterwards.  With ``coherence``
        (the default) the service also subscribes to every member
        Execution's data-update topic, so store updates invalidate
        exactly the cached plans that read them.  ``cost_based=False``
        reverts the engine to the global-mode planner (the benchmark
        baseline).  Returns the engine (useful for local, in-process
        execution in tests).
        """
        engine = _deploy_federation(self, authority, coherence, cost_based)
        return engine

    def execution_service(self, site_name: str, exec_id: str):
        """The live ExecutionService instance for *exec_id*, or None.

        Lets tests and demos trigger ``data_updated()`` on the
        publisher-side service (the instance the Manager memoized), the
        way a streaming ingest tool co-located with the store would.
        """
        site = self.sites[site_name]
        for container in [site.container, *site.replica_containers]:
            for path in container.service_paths():
                service = container.service_at(path)
                if getattr(service, "exec_id", None) == exec_id:
                    return service
        return None

    def bind(self, app_name: str):
        """Bind the client to one published application by name."""
        for org in self.client.discover_organizations("%"):
            for service in org.services():
                if service.name == app_name:
                    return self.client.bind(service)
        raise KeyError(f"no published application {app_name!r}")

    def cleanup(self) -> None:
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None


def _deploy_federation(grid, authority: str, coherence: bool, cost_based: bool):
    """Deploy FederatedQuery + ViewRegistry over *grid* (TestGrid-shaped)."""
    from repro.fedquery.executor import FederationEngine, choose_fanout
    from repro.fedquery.scheduler import FanoutScheduler
    from repro.fedquery.service import FederatedQueryService
    from repro.fedquery.viewservice import ViewRegistryService

    engine_client = PPerfGridClient(grid.environment, grid.uddi_gsh)
    managers = {name: site.manager for name, site in grid.sites.items()}
    # the canonical deployment owns a reactor-attached fan-out pool:
    # the environment's reactor paces its utilization/shedding tick, and
    # the engine never has to create one lazily mid-query
    scheduler = FanoutScheduler(
        max_workers=choose_fanout(
            [manager.stats() for manager in managers.values()],
            slots_per_replica=4,
        ),
        reactor=grid.environment.reactor,
        name=f"fed-{authority.split(':')[0]}",
    )
    engine = FederationEngine(
        engine_client,
        managers=managers,
        cost_based=cost_based,
        scheduler=scheduler,
    )
    container = grid.environment.container_for(authority)
    if container is None:
        container = grid.environment.create_container(authority)
    service = FederatedQueryService(engine)
    gsh = container.deploy("services/FederatedQuery", service)
    grid.fed_gsh = gsh.url()
    grid.fed_engine = engine
    grid.client.use_federation(grid.fed_gsh)
    views_service = ViewRegistryService(engine)
    views_gsh = container.deploy("services/FederatedQuery/views", views_service)
    grid.views_gsh = views_gsh.url()
    grid.client.use_views(grid.views_gsh)
    # the federation container's monitor surfaces scheduler state as SDEs
    container.deploy_monitor(
        "services/FederatedQuery/monitor",
        sources={"fanoutScheduler": engine.scheduler_stats},
    )
    # every site Manager surfaces the federation's view + pool counters
    for site in grid.sites.values():
        site.manager.add_stats_provider("viewStats", engine.view_stats)
        site.manager.add_stats_provider("fanoutScheduler", engine.scheduler_stats)
    if coherence:
        service.subscribeUpdates()
    return engine


@dataclass
class SyntheticGrid:
    """A grid publishing explicit in-memory datasets (tests/benches).

    Same wiring as :class:`TestGrid` — UDDI registry, one site per
    member, a federation endpoint — but every member is an
    :class:`repro.mapping.memory.InMemoryWrapper`, so tests control the
    exact Performance Results (and therefore the exact statistics) each
    member publishes.
    """

    environment: GridEnvironment
    uddi: UddiClient
    uddi_gsh: str
    client: PPerfGridClient
    sites: dict[str, PPerfGridSite] = field(default_factory=dict)
    fed_gsh: str | None = None
    fed_engine: object | None = None
    views_gsh: str | None = None

    def site(self, name: str) -> PPerfGridSite:
        return self.sites[name]

    def deploy_federation(
        self,
        authority: str = "fed.pdx.edu:9090",
        coherence: bool = True,
        cost_based: bool = True,
    ):
        return _deploy_federation(self, authority, coherence, cost_based)

    def execution_service(self, site_name: str, exec_id: str):
        site = self.sites[site_name]
        for container in [site.container, *site.replica_containers]:
            for path in container.service_paths():
                service = container.service_at(path)
                if getattr(service, "exec_id", None) == exec_id:
                    return service
        return None

    def cleanup(self) -> None:
        pass


def build_synthetic_grid(
    wrappers: dict[str, object], environment: GridEnvironment | None = None
) -> SyntheticGrid:
    """Publish *wrappers* (app name -> ApplicationWrapper) as a grid.

    Each member gets its own site container (``<name>.mem.pdx.edu``),
    all published under one UDDI organization; call
    ``deploy_federation()`` on the result to query them federatedly.
    Pass a pre-built *environment* to control the clock or transport
    (e.g. a :class:`~repro.simnet.transport.LatencyTransport` — it must
    be installed before any container binds, which this supports).
    """
    environment = environment or GridEnvironment()
    registry_container = environment.create_container("registry.mem.pdx.edu:9090")
    uddi_gsh = registry_container.deploy("services/uddi", UddiRegistryServer())
    uddi = UddiClient.connect(environment, uddi_gsh)
    org_key = uddi.publish_organization(
        "Synthetic Federation", "synthetic@pdx.edu", "explicit in-memory datasets"
    )
    grid = SyntheticGrid(
        environment=environment,
        uddi=uddi,
        uddi_gsh=uddi_gsh.url(),
        client=PPerfGridClient(environment, uddi_gsh.url()),
    )
    for index, (name, wrapper) in enumerate(sorted(wrappers.items())):
        site = PPerfGridSite(
            environment,
            SiteConfig(authority=f"mem{index}.pdx.edu:8080", app_name=name),
            wrapper,
        )
        site.publish(uddi, org_key, f"synthetic member {name}")
        grid.sites[name] = site
    return grid


def build_grid(
    scale: GridScale | None = None,
    *,
    caching: bool = True,
    timed_mapping: bool = True,
    with_hosts: bool = False,
) -> TestGrid:
    """Build the standard three-source grid.

    ``caching=False`` gives every Execution instance a NullCache (the
    Table 4 / Table 5 "caching off" arm).  ``with_hosts=True`` attaches
    SimHosts to the site containers (needed by the scalability replay).
    """
    scale = scale or GridScale.paper()
    environment = GridEnvironment()
    registry_container = environment.create_container("registry.pdx.edu:9090")
    uddi_gsh = registry_container.deploy("services/uddi", UddiRegistryServer())
    uddi = UddiClient.connect(environment, uddi_gsh)
    org_key = uddi.publish_organization(
        "Portland State University", "pperfdb@cs.pdx.edu", "PPerfDB group test data"
    )

    cache_factory = UnboundedCache if caching else NullCache

    def config(authority: str, app: str) -> SiteConfig:
        return SiteConfig(
            authority=authority,
            app_name=app,
            timed_mapping=timed_mapping,
            cache_factory=cache_factory,
        )

    def host(name: str) -> SimHost | None:
        return SimHost(name) if with_hosts else None

    hpl_db = generate_hpl(seed=scale.seed, num_executions=scale.hpl_executions).to_database()
    hpl_site = PPerfGridSite(
        environment, config("hpl.pdx.edu:8080", "HPL"), HplRdbmsWrapper(hpl_db),
        host=host("hpl-host"),
    )
    hpl_site.publish(uddi, org_key, "HPL runs in PostgreSQL-style RDBMS")

    smg_db = generate_smg98(
        seed=scale.seed + 1,
        num_executions=scale.smg98_executions,
        intervals_per_execution=scale.smg98_intervals,
        messages_per_execution=scale.smg98_messages,
    ).to_database()
    smg98_site = PPerfGridSite(
        environment, config("smg98.pdx.edu:8080", "SMG98"), Smg98RdbmsWrapper(smg_db),
        host=host("smg98-host"),
    )
    smg98_site.publish(uddi, org_key, "SMG98 Vampir trace, 5-table RDBMS")

    tempdir = tempfile.TemporaryDirectory(prefix="pperfgrid-presta-")
    presta = generate_presta(seed=scale.seed + 2, num_executions=scale.presta_executions)
    presta.write_files(tempdir.name)
    presta_site = PPerfGridSite(
        environment,
        config("presta.pdx.edu:8080", "PRESTA-RMA"),
        PrestaTextWrapper(TextFileStore(tempdir.name)),
        host=host("presta-host"),
    )
    presta_site.publish(uddi, org_key, "PRESTA RMA flat ASCII text files")

    client = PPerfGridClient(environment, uddi_gsh.url())
    grid = TestGrid(
        environment=environment,
        uddi=uddi,
        uddi_gsh=uddi_gsh.url(),
        hpl_site=hpl_site,
        smg98_site=smg98_site,
        presta_site=presta_site,
        client=client,
        scale=scale,
        _tempdir=tempdir,
    )
    grid.sites = {"HPL": hpl_site, "SMG98": smg98_site, "PRESTA-RMA": presta_site}
    return grid
