"""PortType / Operation / Parameter model.

Wire types use the names of :class:`repro.soap.encoding.XsdType`
(``"xsd:string"``, ``"xsd:int"``, ...) plus the conventions:

* ``"xsd:string[]"`` — array of strings (the thesis's ubiquitous return
  type);
* ``"void"`` — no return value;
* a trailing ``[]`` on any scalar type denotes an array of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.soap.encoding import SoapEncodingError, XsdType

_SCALARS = {t.value for t in XsdType}


def validate_wire_type(name: str) -> None:
    """Check a declared wire type string; raises on unknown names."""
    base = name[:-2] if name.endswith("[]") else name
    if base == "void":
        if name != "void":
            raise SoapEncodingError("void cannot be an array type")
        return
    if base not in _SCALARS:
        raise SoapEncodingError(f"unknown wire type {name!r}")


@dataclass(frozen=True)
class Parameter:
    """One named, typed operation parameter."""

    name: str
    wire_type: str

    def __post_init__(self) -> None:
        validate_wire_type(self.wire_type)
        if self.wire_type == "void":
            raise SoapEncodingError("a parameter cannot be void")


@dataclass(frozen=True)
class Operation:
    """One operation: name, parameters, return type, documentation.

    ``doc`` holds the "Operation Semantics" column of Tables 1–3.
    """

    name: str
    parameters: tuple[Parameter, ...] = ()
    returns: str = "void"
    doc: str = ""

    def __post_init__(self) -> None:
        validate_wire_type(self.returns)
        seen: set[str] = set()
        for p in self.parameters:
            if p.name in seen:
                raise SoapEncodingError(f"duplicate parameter {p.name!r} in {self.name}")
            seen.add(p.name)

    @property
    def param_names(self) -> list[str]:
        return [p.name for p in self.parameters]

    def signature(self) -> str:
        params = ", ".join(f"{p.wire_type} {p.name}" for p in self.parameters)
        return f"{self.returns} {self.name}({params})"


@dataclass(frozen=True)
class PortType:
    """A named set of operations in a namespace.

    ``extends`` lists PortTypes whose operations are inherited — the OGSI
    pattern where every Grid service also implements GridService.
    """

    name: str
    namespace: str
    operations: tuple[Operation, ...] = ()
    extends: tuple["PortType", ...] = ()
    doc: str = ""

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for op in self.all_operations():
            if op.name in seen:
                raise SoapEncodingError(
                    f"duplicate operation {op.name!r} in PortType {self.name!r}"
                )
            seen.add(op.name)

    def all_operations(self) -> list[Operation]:
        """Own operations plus inherited ones (own first)."""
        ops = list(self.operations)
        for base in self.extends:
            ops.extend(base.all_operations())
        return ops

    def operation(self, name: str) -> Operation:
        for op in self.all_operations():
            if op.name == name:
                return op
        raise KeyError(f"PortType {self.name!r} has no operation {name!r}")

    def has_operation(self, name: str) -> bool:
        return any(op.name == name for op in self.all_operations())


@dataclass
class PortTypeRegistry:
    """Name -> PortType lookup used when parsing WSDL with extensions."""

    by_name: dict[str, PortType] = field(default_factory=dict)

    def register(self, porttype: PortType) -> PortType:
        self.by_name[porttype.name] = porttype
        return porttype

    def get(self, name: str) -> PortType | None:
        return self.by_name.get(name)
