"""Ablation benches (DESIGN.md A1-A3).

A1 quantifies where the Table 4 overhead comes from (SOAP encode/parse
vs payload size).  A2 stresses the Manager's distribution policies on
heterogeneous hosts, where the thesis's interleaving stops being optimal.
A3 compares cache-replacement policies under skewed and uniform query
streams.
"""

from conftest import write_result

from repro.experiments.ablations import (
    run_cache_policy_ablation,
    run_distribution_ablation,
    run_network_contention_ablation,
    run_serialization_ablation,
)


def test_a1_serialization_cost(benchmark):
    result = benchmark.pedantic(
        run_serialization_ablation,
        kwargs={"payload_sizes": (1, 10, 100, 1000, 5000), "trials": 10},
        rounds=1,
        iterations=1,
    )
    write_result("ablation_a1_serialization.txt", result.to_table())
    # SOAP cost grows with payload; the gap vs a direct call is orders of
    # magnitude at every size (why local bypass matters, §7).
    assert result.soap_us == sorted(result.soap_us)
    for soap, direct in zip(result.soap_us, result.direct_us):
        assert soap > direct * 10


def test_a2_distribution_policies(benchmark):
    def run_both():
        homogeneous = run_distribution_ablation(host_factors=(1.0, 1.0))
        heterogeneous = run_distribution_ablation(
            host_factors=(1.0, 3.0), scenario="heterogeneous (3x slower host B)"
        )
        return homogeneous, heterogeneous

    homogeneous, heterogeneous = benchmark.pedantic(run_both, rounds=1, iterations=1)
    write_result(
        "ablation_a2_distribution.txt",
        homogeneous.to_table() + "\n\n" + heterogeneous.to_table(),
    )
    # Homogeneous: interleaving (the thesis policy) is optimal.
    assert homogeneous.makespans["interleaved"] <= min(
        v for k, v in homogeneous.makespans.items() if k != "interleaved"
    ) * 1.001
    # Heterogeneous: even counts on unequal hosts leave the slow host the
    # bottleneck — interleaved is 1.5x worse than the theoretical best of
    # weighting by speed, visible as a large makespan jump vs homogeneous.
    assert heterogeneous.makespans["interleaved"] > homogeneous.makespans["interleaved"]


def test_a4_network_contention(benchmark):
    result = benchmark.pedantic(run_network_contention_ablation, rounds=1, iterations=1)
    write_result("ablation_a4_network_contention.txt", result.to_table())
    # Small payloads: distribution pays off (~2x); huge payloads: the
    # shared wire is the bottleneck and the speedup collapses to ~1x.
    assert result.speedups[0] > 1.8
    assert result.speedups[-1] < 1.1
    assert result.crossover_bytes() is not None
    # Speedup decays monotonically (within rounding) with payload size.
    for earlier, later in zip(result.speedups, result.speedups[1:]):
        assert later <= earlier + 1e-6


def test_a3_cache_policies(benchmark):
    def run_both():
        skewed = run_cache_policy_ablation(skewed=True)
        uniform = run_cache_policy_ablation(skewed=False)
        return skewed, uniform

    skewed, uniform = benchmark.pedantic(run_both, rounds=1, iterations=1)
    write_result(
        "ablation_a3_cache_policy.txt", skewed.to_table() + "\n\n" + uniform.to_table()
    )
    assert skewed.hit_rates["unbounded"] >= skewed.hit_rates["lru(32)"]
    assert skewed.hit_rates["lru(32)"] > uniform.hit_rates["lru(32)"]
