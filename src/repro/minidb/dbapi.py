"""DB-API-style connection/cursor facade (the "JDBC" of this repo).

The thesis's Mapping Layer calls ``executeQuery("SELECT id FROM ...")``
through JDBC.  Wrappers here do the same through :class:`Cursor`, keeping
the layering of Figure 4 intact.
"""

from __future__ import annotations

from typing import Iterator

from repro.minidb.database import Database
from repro.minidb.errors import ProgrammingError
from repro.minidb.executor import ResultSet
from repro.minidb.types import SqlValue


class Cursor:
    """A lightweight cursor over one connection."""

    def __init__(self, connection: "Connection") -> None:
        self.connection = connection
        self.description: list[tuple[str]] | None = None
        self.rowcount = -1
        self._rows: list[tuple] = []
        self._pos = 0
        self._closed = False

    def execute(self, sql: str, params: tuple | list | None = None) -> "Cursor":
        if self._closed:
            raise ProgrammingError("cursor is closed")
        result = self.connection.database.execute(sql, params)
        if isinstance(result, ResultSet):
            self.description = [(name,) for name in result.columns]
            self._rows = result.rows
            self.rowcount = len(result.rows)
        else:
            self.description = None
            self._rows = []
            self.rowcount = result
        self._pos = 0
        return self

    def executemany(self, sql: str, seq_of_params: list[tuple | list]) -> "Cursor":
        total = 0
        for params in seq_of_params:
            self.execute(sql, params)
            total += max(self.rowcount, 0)
        self.rowcount = total
        return self

    def fetchone(self) -> tuple | None:
        if self._pos >= len(self._rows):
            return None
        row = self._rows[self._pos]
        self._pos += 1
        return row

    def fetchmany(self, size: int = 1) -> list[tuple]:
        rows = self._rows[self._pos : self._pos + size]
        self._pos += len(rows)
        return rows

    def fetchall(self) -> list[tuple]:
        rows = self._rows[self._pos :]
        self._pos = len(self._rows)
        return rows

    def scalar(self) -> SqlValue:
        """First column of the first row (or None when empty)."""
        row = self.fetchone()
        return None if row is None else row[0]

    def __iter__(self) -> Iterator[tuple]:
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row

    def close(self) -> None:
        self._closed = True
        self._rows = []

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class Connection:
    """A connection bound to one :class:`Database`."""

    def __init__(self, database: Database) -> None:
        self.database = database
        self._closed = False

    def cursor(self) -> Cursor:
        if self._closed:
            raise ProgrammingError("connection is closed")
        return Cursor(self)

    def execute(self, sql: str, params: tuple | list | None = None) -> Cursor:
        return self.cursor().execute(sql, params)

    # ------------------------------------------------------- transactions
    def begin(self) -> None:
        self.database.begin()

    def commit(self) -> None:
        self.database.commit()

    def rollback(self) -> None:
        self.database.rollback()

    def transaction(self) -> "_Transaction":
        """Context manager: commit on success, roll back on exception."""
        return _Transaction(self)

    def close(self) -> None:
        self._closed = True

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class _Transaction:
    """Commit-on-success / rollback-on-error scope."""

    def __init__(self, connection: Connection) -> None:
        self.connection = connection

    def __enter__(self) -> Connection:
        self.connection.begin()
        return self.connection

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self.connection.commit()
        else:
            self.connection.rollback()
        return False  # never swallow the exception


def connect(database: Database | str | None = None) -> Connection:
    """Open a connection; a string/None creates a fresh named database."""
    if isinstance(database, Database):
        return Connection(database)
    return Connection(Database(database or "db"))
