"""A small discrete-event simulation engine.

The Figure 12 reproduction replays measured query costs onto host
timelines, which is analytically simple but bakes in assumptions (all
queries ready at t=0, response transfer charged to the serving host).
This engine provides an *independent* model — events, FIFO resources,
explicit request/response flows — used by
:func:`simulate_scalability_des` to cross-validate the replay: the two
models must agree on the two-host speedup, and tests assert they do.

The engine is general: ``EventScheduler`` drives time, ``FifoResource``
models anything that serves one task at a time (a CPU, a shared network
link), and callbacks chain follow-up events.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable


class EventScheduler:
    """A time-ordered event queue with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = 0
        self.now = 0.0
        self.events_run = 0

    def schedule_at(self, time: float, action: Callable[[], None]) -> None:
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} before now={self.now}")
        self._sequence += 1
        heapq.heappush(self._queue, (time, self._sequence, action))

    def schedule_after(self, delay: float, action: Callable[[], None]) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.schedule_at(self.now + delay, action)

    def run(self, until: float | None = None, max_events: int = 10_000_000) -> float:
        """Run events (optionally up to time *until*); returns final time."""
        while self._queue:
            if self.events_run >= max_events:
                raise RuntimeError(f"event budget exhausted ({max_events})")
            time, _, action = self._queue[0]
            if until is not None and time > until:
                break
            heapq.heappop(self._queue)
            self.now = time
            self.events_run += 1
            action()
        if until is not None and until > self.now:
            self.now = until
        return self.now

    @property
    def pending(self) -> int:
        return len(self._queue)


@dataclass
class FifoResource:
    """Serves one task at a time; queued tasks start in arrival order.

    ``submit(duration, done)`` enqueues a task; *done(start, end)* fires
    when the task completes.
    """

    scheduler: EventScheduler
    name: str = "resource"
    busy_until: float = 0.0
    total_busy: float = 0.0
    completed: int = 0
    _waiting: int = field(default=0, repr=False)

    def submit(self, duration: float, done: Callable[[float, float], None] | None = None) -> None:
        if duration < 0:
            raise ValueError(f"negative duration {duration}")
        start = max(self.scheduler.now, self.busy_until)
        end = start + duration
        self.busy_until = end
        self.total_busy += duration

        def complete() -> None:
            self.completed += 1
            if done is not None:
                done(start, end)

        self.scheduler.schedule_at(end, complete)

    def utilization(self, horizon: float) -> float:
        if horizon <= 0:
            return 0.0
        return min(1.0, self.total_busy / horizon)


def simulate_scalability_des(
    query_costs: list[list[float]],
    replicas: int,
    response_bytes: int = 0,
    bandwidth_bytes_per_s: float = 100e6 / 8,
    latency_s: float = 0.0005,
    shared_network: bool = False,
) -> float:
    """DES model of one Figure 12 fan-out; returns the makespan.

    ``query_costs[i]`` is the list of per-query service costs for
    execution *i*; executions are interleaved across *replicas* hosts
    (the Manager policy).  Each query occupies its host for its cost,
    then its response occupies the network (one shared link when
    ``shared_network``, otherwise a per-host link).  All queries of an
    execution are issued by a dedicated client thread, so they serialize
    *per execution* as well as per host — matching the thesis's client.
    """
    scheduler = EventScheduler()
    hosts = [FifoResource(scheduler, f"host-{i}") for i in range(replicas)]
    if shared_network:
        links = [FifoResource(scheduler, "shared-link")] * replicas
    else:
        links = [FifoResource(scheduler, f"link-{i}") for i in range(replicas)]
    transfer = latency_s + response_bytes / bandwidth_bytes_per_s
    done_at = [0.0]

    def issue(exec_index: int, query_index: int) -> None:
        if query_index >= len(query_costs[exec_index]):
            return
        host_index = exec_index % replicas
        cost = query_costs[exec_index][query_index]

        def served(start: float, end: float) -> None:
            def delivered(t_start: float, t_end: float) -> None:
                done_at[0] = max(done_at[0], t_end)
                issue(exec_index, query_index + 1)

            links[host_index].submit(transfer, delivered)

        hosts[host_index].submit(cost, served)

    for exec_index in range(len(query_costs)):
        issue(exec_index, 0)
    scheduler.run()
    return done_at[0]
