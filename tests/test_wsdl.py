"""Tests for PortTypes, WSDL documents, and dynamic client stubs."""

import pytest

from repro.ogsi.porttypes import GRID_SERVICE_PORTTYPE
from repro.simnet.metrics import Recorder
from repro.simnet.transport import LoopbackTransport
from repro.soap import SoapEncodingError
from repro.soap.rpc import decode_request, encode_response
from repro.wsdl import (
    Operation,
    Parameter,
    PortType,
    StubError,
    generate_wsdl,
    make_stub,
    parse_wsdl,
)

ECHO_PT = PortType(
    "Echo",
    "urn:echo",
    (
        Operation(
            "echo",
            (Parameter("text", "xsd:string"),),
            "xsd:string",
            doc="Echoes its input.",
        ),
        Operation("add", (Parameter("a", "xsd:int"), Parameter("b", "xsd:int")), "xsd:int"),
        Operation("batch", (Parameter("items", "xsd:string[]"),), "xsd:string[]"),
        Operation("ping", (), "void"),
    ),
    extends=(GRID_SERVICE_PORTTYPE,),
)


class TestPortTypeModel:
    def test_all_operations_includes_inherited(self):
        names = {op.name for op in ECHO_PT.all_operations()}
        assert {"echo", "FindServiceData", "Destroy"} <= names

    def test_operation_lookup(self):
        assert ECHO_PT.operation("add").returns == "xsd:int"
        with pytest.raises(KeyError):
            ECHO_PT.operation("nope")

    def test_duplicate_operation_rejected(self):
        dup = Operation("echo", (), "void")
        with pytest.raises(SoapEncodingError):
            PortType("Bad", "urn:x", (dup,), extends=(ECHO_PT,))

    def test_duplicate_parameter_rejected(self):
        with pytest.raises(SoapEncodingError):
            Operation("op", (Parameter("a", "xsd:int"), Parameter("a", "xsd:int")))

    def test_void_parameter_rejected(self):
        with pytest.raises(SoapEncodingError):
            Parameter("p", "void")

    def test_unknown_wire_type_rejected(self):
        with pytest.raises(SoapEncodingError):
            Parameter("p", "xsd:nonsense")
        with pytest.raises(SoapEncodingError):
            Operation("op", (), "void[]")

    def test_signature(self):
        assert ECHO_PT.operation("add").signature() == "xsd:int add(xsd:int a, xsd:int b)"


class TestWsdlDocument:
    def test_roundtrip(self):
        text = generate_wsdl(ECHO_PT, "http://host:1/services/echo")
        parsed, endpoint = parse_wsdl(text)
        assert endpoint == "http://host:1/services/echo"
        assert parsed.namespace == "urn:echo"
        # Flattened: inherited GridService ops appear directly.
        assert parsed.has_operation("echo")
        assert parsed.has_operation("FindServiceData")
        assert parsed.operation("echo").doc == "Echoes its input."
        assert [p.wire_type for p in parsed.operation("add").parameters] == [
            "xsd:int",
            "xsd:int",
        ]
        assert parsed.operation("ping").returns == "void"

    def test_extends_attribute_present(self):
        text = generate_wsdl(ECHO_PT, "http://h/e")
        assert 'extends="GridService"' in text

    def test_non_wsdl_document_rejected(self):
        with pytest.raises(ValueError):
            parse_wsdl("<html/>")


class _EchoHandler:
    """Server side for stub tests: decodes, dispatches, encodes."""

    def __call__(self, path: str, request: bytes) -> bytes:
        rpc = decode_request(request)
        if rpc.operation == "echo":
            result: object = "echo:" + rpc.params[0]
        elif rpc.operation == "add":
            result = rpc.params[0] + rpc.params[1]
        elif rpc.operation == "batch":
            result = [s.upper() for s in rpc.params[0]]
        elif rpc.operation == "ping":
            return encode_response(rpc.namespace, "ping", None, is_void=True)
        else:  # pragma: no cover
            raise AssertionError(rpc.operation)
        return encode_response(rpc.namespace, rpc.operation, result)


@pytest.fixture()
def stub():
    recorder = Recorder()
    transport = LoopbackTransport(recorder)
    transport.bind("host:1", _EchoHandler())
    return make_stub(ECHO_PT, "http://host:1/services/echo", transport)


class TestClientStub:
    def test_string_call(self, stub):
        assert stub.echo("hi") == "echo:hi"

    def test_int_call(self, stub):
        assert stub.add(2, 3) == 5

    def test_array_call(self, stub):
        assert stub.batch(["a", "b"]) == ["A", "B"]

    def test_void_call(self, stub):
        assert stub.ping() is None

    def test_invoke_by_name(self, stub):
        assert stub.invoke("echo", "x") == "echo:x"

    def test_unknown_operation_raises(self, stub):
        with pytest.raises(AttributeError):
            stub.frobnicate
        with pytest.raises(StubError):
            stub.invoke("frobnicate")

    def test_wrong_arity_rejected_client_side(self, stub):
        with pytest.raises(StubError):
            stub.echo()
        with pytest.raises(StubError):
            stub.echo("a", "b")

    def test_wrong_type_rejected_client_side(self, stub):
        with pytest.raises(StubError):
            stub.echo(42)
        with pytest.raises(StubError):
            stub.add(1.5, 2)
        with pytest.raises(StubError):
            stub.add(True, 2)
        with pytest.raises(StubError):
            stub.batch("not-a-list")

    def test_nil_argument_allowed(self, stub):
        # None is representable on the wire for any declared type.
        with pytest.raises(TypeError):
            # The handler concatenates, so the failure is server-side —
            # the stub itself accepts the nil.
            stub.echo(None)

    def test_operation_names(self, stub):
        assert "echo" in stub.operation_names()
        assert "FindServiceData" in stub.operation_names()

    def test_bytes_recorded(self, stub):
        recorder = stub._transport.recorder
        before = recorder.bytes_total
        stub.echo("hello")
        assert recorder.bytes_total > before
        assert recorder.count("transport.calls") >= 1
