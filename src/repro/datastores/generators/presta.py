"""Synthetic PRESTA RMA (MPI bandwidth/latency benchmark) dataset.

PRESTA sweeps message sizes for standard MPI point-to-point and MPI-2
one-sided (RMA) operations, reporting latency and bandwidth per size.
The thesis stores it as flat ASCII text files, one per execution, parsed
by a custom parser; a ``getPR`` query returns the whole sweep for an
operation (one value per message size), giving the ~5.7 KB payloads of
Table 4.

The synthetic latency model is a standard alpha-beta fit:
``latency = alpha + size / beta`` with per-operation alpha/beta and
seeded noise.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.minidb import Database

PRESTA_METRICS = ("latency_us", "bandwidth_mbps")
PRESTA_ATTRIBUTES = ("execid", "rundate", "numprocs", "tasks_per_node", "network")

PRESTA_OPERATIONS = ("MPI_Send", "MPI_Isend", "MPI_Put", "MPI_Get", "MPI_Accumulate")
#: message sizes: 8 B .. 4 MiB in powers of two (20 points)
PRESTA_MSG_SIZES = tuple(8 * 2**i for i in range(20))

#: (alpha microseconds, beta MB/s asymptotic) per operation, 2004-era Elan3
_OP_PARAMS = {
    "MPI_Send": (5.0, 300.0),
    "MPI_Isend": (4.5, 310.0),
    "MPI_Put": (3.5, 340.0),
    "MPI_Get": (6.0, 320.0),
    "MPI_Accumulate": (8.0, 250.0),
}


@dataclass
class PrestaExecution:
    """One benchmark run: attributes plus the (op, size) measurement grid."""

    execid: int
    rundate: str
    numprocs: int
    tasks_per_node: int
    network: str
    start_time: float
    end_time: float
    #: rows of (operation, msgsize, iterations, latency_us, bandwidth_mbps)
    measurements: list[tuple[str, int, int, float, float]] = field(default_factory=list)

    def to_text(self) -> str:
        """Render the flat ASCII file format the thesis's parser reads."""
        lines = [
            "# PRESTA RMA Benchmark results",
            f"# execid: {self.execid}",
            f"# rundate: {self.rundate}",
            f"# numprocs: {self.numprocs}",
            f"# tasks_per_node: {self.tasks_per_node}",
            f"# network: {self.network}",
            f"# start: {self.start_time}",
            f"# end: {self.end_time}",
            "op msgsize iters latency_us bandwidth_mbps",
        ]
        for op, size, iters, lat, bw in self.measurements:
            lines.append(f"{op} {size} {iters} {lat:.3f} {bw:.3f}")
        return "\n".join(lines) + "\n"


@dataclass
class PrestaDataset:
    """All generated executions."""

    executions: list[PrestaExecution] = field(default_factory=list)

    @property
    def num_executions(self) -> int:
        return len(self.executions)

    def write_files(self, directory) -> list[str]:
        """Write one ``presta_rma_<id>.txt`` per execution; returns paths."""
        import os

        os.makedirs(directory, exist_ok=True)
        paths: list[str] = []
        for execution in self.executions:
            path = os.path.join(str(directory), f"presta_rma_{execution.execid}.txt")
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(execution.to_text())
            paths.append(path)
        return paths

    def to_database(self) -> Database:
        """Relational form (the thesis's future-work RMA-in-RDBMS test)."""
        db = Database("presta")
        db.execute(
            "CREATE TABLE rma_execs (execid INTEGER PRIMARY KEY, rundate TEXT, "
            "numprocs INTEGER, tasks_per_node INTEGER, network TEXT, "
            "start_time REAL, end_time REAL)"
        )
        db.execute(
            "CREATE TABLE rma_results (resultid INTEGER PRIMARY KEY, execid INTEGER, "
            "op TEXT, msgsize INTEGER, iters INTEGER, latency_us REAL, "
            "bandwidth_mbps REAL)"
        )
        db.execute("CREATE INDEX idx_rma_exec ON rma_results (execid)")
        exec_cols = "execid rundate numprocs tasks_per_node network start_time end_time".split()
        result_cols = "resultid execid op msgsize iters latency_us bandwidth_mbps".split()
        exec_rows = [
            (e.execid, e.rundate, e.numprocs, e.tasks_per_node, e.network, e.start_time, e.end_time)
            for e in self.executions
        ]
        result_rows = []
        resultid = 0
        for execution in self.executions:
            for op, size, iters, lat, bw in execution.measurements:
                resultid += 1
                result_rows.append((resultid, execution.execid, op, size, iters, lat, bw))
        db.load_rows("rma_execs", exec_cols, exec_rows)
        db.load_rows("rma_results", result_cols, result_rows)
        return db


def generate_presta(seed: int = 13, num_executions: int = 32) -> PrestaDataset:
    """Generate *num_executions* benchmark runs."""
    rng = random.Random(seed)
    ds = PrestaDataset()
    for execid in range(1, num_executions + 1):
        numprocs = rng.choice((2, 4, 8, 16))
        month = 1 + (execid * 3) % 12
        day = 1 + (execid * 17) % 28
        execution = PrestaExecution(
            execid=execid,
            rundate=f"2004-{month:02d}-{day:02d}",
            numprocs=numprocs,
            tasks_per_node=rng.choice((1, 2)),
            network=rng.choice(("elan3", "myrinet", "fastethernet")),
            start_time=0.0,
            end_time=round(rng.uniform(120.0, 600.0), 3),
        )
        for op in PRESTA_OPERATIONS:
            alpha, beta = _OP_PARAMS[op]
            for size in PRESTA_MSG_SIZES:
                noise = rng.gauss(1.0, 0.05)
                latency_us = (alpha + size / beta) * max(0.5, noise)
                bandwidth_mbps = size / latency_us  # MB/s = bytes/us
                iters = max(10, 100000 // (1 + size // 64))
                execution.measurements.append(
                    (op, size, iters, round(latency_us, 3), round(bandwidth_mbps, 3))
                )
        ds.executions.append(execution)
    return ds
