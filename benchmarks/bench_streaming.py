"""Streaming result cursors vs bulk transfer: memory and first-row latency.

Two scenarios, one per failure mode of single-bulk transfers:

* **Bounded-memory drain** — a 100k-row store pulled through the
  client's transparent ``stream_pr`` (chunked ResultCursor underneath)
  against one bulk ``getPR``.  tracemalloc peaks: the chunked drain must
  hold at least 5x less than the bulk materialization.

* **Time-to-first-row** — a federated raw query over a latency-modeled
  WAN (:class:`LatencyTransport` sleeping the modeled round-trip per
  call).  The bulk path pays every member's full transfer before any row
  exists; the streamed path yields its first merged row after one chunk
  per member, at least 5x sooner — with byte-identical rows and order.

``FEDQUERY_BENCH_QUICK=1`` (the CI mode) shrinks both datasets so the
file runs in seconds while asserting the same shape.
"""

from __future__ import annotations

import os
import time
import tracemalloc

import pytest
from conftest import write_json, write_result

from repro.core.semantic import PerformanceResult
from repro.experiments.common import build_synthetic_grid
from repro.mapping.memory import InMemoryExecution, InMemoryWrapper
from repro.ogsi.container import GridEnvironment
from repro.simnet.network import NetworkModel
from repro.simnet.transport import LatencyTransport

QUICK = os.environ.get("FEDQUERY_BENCH_QUICK", "") not in ("", "0")

DRAIN_ROWS = 20_000 if QUICK else 100_000
FED_MEMBERS = 4
FED_EXECS = 2
FED_ROWS_PER_EXEC = 4_000 if QUICK else 8_000

#: a slow WAN makes transfer time dominate per-message latency, which is
#: exactly the regime chunked cursors exist for
WAN = NetworkModel(latency_s=0.002, bandwidth_bytes_per_s=1e6)


def _rows(n: int, base: float) -> list[PerformanceResult]:
    return [
        PerformanceResult(
            "m", f"/rank/{i % 16}", "synthetic",
            float(i), float(i + 1), base + (i * 7 % 1009),
        )
        for i in range(n)
    ]


def _bind_app(grid, name: str):
    for org in grid.client.discover_organizations("%"):
        for service in org.services():
            if service.name == name:
                return grid.client.bind(service)
    raise KeyError(f"no published application {name!r}")


def test_bounded_memory_drain():
    wrapper = InMemoryWrapper(
        "BIG", [InMemoryExecution("0", {}, _rows(DRAIN_ROWS, 0.0))]
    )
    grid = build_synthetic_grid({"BIG": wrapper})
    binding = _bind_app(grid, "BIG").all_executions()[0]
    foci = [f"/rank/{i}" for i in range(16)]

    tracemalloc.start()
    try:
        # streamed first: the bulk arm would warm the server PR cache
        tracemalloc.reset_peak()
        base = tracemalloc.get_traced_memory()[0]
        t0 = time.perf_counter()
        streamed_count = sum(
            1 for _ in binding.stream_pr("m", foci, max_rows=256, threshold_rows=1)
        )
        streamed_s = time.perf_counter() - t0
        streamed_peak = tracemalloc.get_traced_memory()[1] - base

        tracemalloc.reset_peak()
        base = tracemalloc.get_traced_memory()[0]
        t0 = time.perf_counter()
        bulk = binding.get_pr("m", foci)
        bulk_s = time.perf_counter() - t0
        bulk_peak = tracemalloc.get_traced_memory()[1] - base
    finally:
        tracemalloc.stop()

    assert streamed_count == DRAIN_ROWS and len(bulk) == DRAIN_ROWS
    ratio = bulk_peak / max(1, streamed_peak)
    write_result(
        "streaming_drain.txt",
        "\n".join(
            [
                f"Bounded-memory drain, {DRAIN_ROWS} rows "
                f"({'quick' if QUICK else 'full'} scale)",
                f"{'arm':<12}{'peak bytes':>14}{'seconds':>10}",
                f"{'bulk':<12}{bulk_peak:>14}{bulk_s:>9.3f}s",
                f"{'streamed':<12}{streamed_peak:>14}{streamed_s:>9.3f}s",
                f"peak-memory reduction: {ratio:.1f}x",
            ]
        ),
    )
    write_json(
        "streaming_drain",
        {
            "rows": DRAIN_ROWS,
            "bulk_peak_bytes": bulk_peak,
            "bulk_s": bulk_s,
            "streamed_peak_bytes": streamed_peak,
            "streamed_s": streamed_s,
            "peak_memory_reduction": ratio,
            "quick": QUICK,
        },
    )
    assert streamed_peak * 5 <= bulk_peak, (
        f"streamed peak {streamed_peak} not 5x below bulk peak {bulk_peak}"
    )


@pytest.fixture(scope="module")
def wan_grid():
    environment = GridEnvironment()
    environment.transport = LatencyTransport(environment.transport, WAN)
    wrappers = {
        f"APP{m}": InMemoryWrapper(
            f"APP{m}",
            [
                InMemoryExecution(
                    str(e), {"numprocs": str(2 ** (e + 1))},
                    _rows(FED_ROWS_PER_EXEC, m * 10_000.0 + e * 1_000.0),
                )
                for e in range(FED_EXECS)
            ],
        )
        for m in range(FED_MEMBERS)
    }
    grid = build_synthetic_grid(wrappers, environment=environment)
    engine = grid.deploy_federation()
    engine.stream_threshold_rows = 0  # every remote execution streams
    engine.stream_chunk_rows = 64
    return grid, engine


def test_time_to_first_row(wan_grid):
    _, engine = wan_grid
    text = "SELECT m"
    engine.execute(text)  # warm exec-id discovery and member stats
    engine.invalidate_cache()

    t0 = time.perf_counter()
    bulk = engine.execute(text)
    bulk_total_s = time.perf_counter() - t0
    # bulk rows exist only when the whole result does
    bulk_first_row_s = bulk_total_s

    engine.invalidate_cache()
    t0 = time.perf_counter()
    streamed = engine.execute(text, stream=True)
    rows = iter(streamed)
    first = next(rows)
    stream_first_row_s = time.perf_counter() - t0
    streamed_rows = [first, *rows]
    stream_total_s = time.perf_counter() - t0

    total_rows = FED_MEMBERS * FED_EXECS * FED_ROWS_PER_EXEC
    assert len(streamed_rows) == total_rows
    assert [r.pack() for r in streamed_rows] == [r.pack() for r in bulk.rows]

    ratio = bulk_first_row_s / max(1e-9, stream_first_row_s)
    write_result(
        "streaming_ttfr.txt",
        "\n".join(
            [
                f"Time to first row, {total_rows} rows across "
                f"{FED_MEMBERS} members x {FED_EXECS} executions over a "
                f"{WAN.bandwidth_bytes_per_s * 8 / 1e6:.0f} Mbit/s, "
                f"{WAN.latency_s * 1e3:.0f} ms WAN "
                f"({'quick' if QUICK else 'full'} scale)",
                f"{'arm':<12}{'first row':>12}{'complete':>12}",
                f"{'bulk':<12}{bulk_first_row_s:>11.3f}s{bulk_total_s:>11.3f}s",
                f"{'streamed':<12}{stream_first_row_s:>11.3f}s{stream_total_s:>11.3f}s",
                f"first-row speedup: {ratio:.1f}x",
            ]
        ),
    )
    write_json(
        "streaming_ttfr",
        {
            "rows": total_rows,
            "members": FED_MEMBERS,
            "execs_per_member": FED_EXECS,
            "bulk_first_row_s": bulk_first_row_s,
            "bulk_total_s": bulk_total_s,
            "stream_first_row_s": stream_first_row_s,
            "stream_total_s": stream_total_s,
            "first_row_speedup": ratio,
            "quick": QUICK,
        },
    )
    assert ratio >= 5.0, (
        f"first streamed row after {stream_first_row_s:.3f}s vs bulk "
        f"{bulk_first_row_s:.3f}s — only {ratio:.2f}x"
    )
