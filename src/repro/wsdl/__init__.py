"""WSDL substrate: PortType definitions, document generation, stubs.

A :class:`PortType` is the unit of interface description in the thesis
(Tables 1–3 are PortType listings).  Service implementations declare the
PortTypes they expose; the container uses them to validate dispatch, the
client uses them to build dynamic stubs (the client half of the
Architecture Adapter pattern), and :func:`generate_wsdl` renders a
GWSDL-style document for publication in the UDDI registry.
"""

from repro.wsdl.porttype import Operation, Parameter, PortType
from repro.wsdl.document import generate_wsdl, parse_wsdl
from repro.wsdl.stubgen import ClientStub, StubError, make_stub

__all__ = [
    "ClientStub",
    "Operation",
    "Parameter",
    "PortType",
    "StubError",
    "generate_wsdl",
    "make_stub",
    "parse_wsdl",
]
