"""Tests for the registry-callback (async) query model (§7 extension)."""

import pytest

from repro.core import AsyncQueryCollector


@pytest.fixture()
def setup(fresh_grid):
    app = fresh_grid.bind("HPL")
    execution = app.all_executions()[0]
    collector = AsyncQueryCollector(fresh_grid.environment)
    return fresh_grid, execution, collector


class TestAsyncQueries:
    def test_submit_returns_query_id(self, setup):
        _, execution, collector = setup
        query_id = execution.get_pr_async("gflops", ["/Run"], collector.sink_handle)
        assert query_id.startswith("query-")

    def test_results_delivered_via_callback(self, setup):
        _, execution, collector = setup
        query_id = execution.get_pr_async("gflops", ["/Run"], collector.sink_handle)
        results = collector.wait_for(query_id)
        assert len(results) == 1
        sync = execution.get_pr("gflops", ["/Run"])
        assert results[0] == sync[0]

    def test_multiple_outstanding_queries(self, setup):
        _, execution, collector = setup
        ids = [
            execution.get_pr_async(metric, ["/Run"], collector.sink_handle)
            for metric in ("gflops", "runtimesec", "resid")
        ]
        assert len(set(ids)) == 3
        assert collector.collect() == 3
        assert {collector.wait_for(i)[0].metric for i in ids} == {
            "gflops",
            "runtimesec",
            "resid",
        }

    def test_empty_result_delivery(self, setup):
        _, execution, collector = setup
        query_id = execution.get_pr_async(
            "gflops", ["/Run"], collector.sink_handle, result_type="vampir"
        )
        assert collector.wait_for(query_id) == []

    def test_query_error_delivered_not_raised(self, setup):
        _, execution, collector = setup
        query_id = execution.get_pr_async("watts", ["/Run"], collector.sink_handle)
        with pytest.raises(RuntimeError, match="async query"):
            collector.wait_for(query_id)
        assert query_id in collector.errors

    def test_unknown_query_id(self, setup):
        _, _, collector = setup
        with pytest.raises(KeyError):
            collector.wait_for("query-never-submitted")

    def test_bad_sink_handle_faults_submit(self, setup):
        from repro.soap import SoapFault

        _, execution, _ = setup
        with pytest.raises(SoapFault):
            execution.get_pr_async("gflops", ["/Run"], "ppg://ghost:1/services/sink")

    def test_two_collectors_coexist(self, fresh_grid):
        app = fresh_grid.bind("HPL")
        execution = app.all_executions()[0]
        a = AsyncQueryCollector(fresh_grid.environment)
        b = AsyncQueryCollector(fresh_grid.environment)
        qa = execution.get_pr_async("gflops", ["/Run"], a.sink_handle)
        qb = execution.get_pr_async("runtimesec", ["/Run"], b.sink_handle)
        assert a.wait_for(qa)[0].metric == "gflops"
        assert b.wait_for(qb)[0].metric == "runtimesec"
        assert qb not in a.results
