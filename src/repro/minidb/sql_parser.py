"""Recursive-descent SQL parser.

Expression grammar (loosest to tightest binding):

    or_expr     := and_expr (OR and_expr)*
    and_expr    := not_expr (AND not_expr)*
    not_expr    := NOT not_expr | predicate
    predicate   := additive (comparison | IS [NOT] NULL | [NOT] IN (...)
                   | [NOT] BETWEEN x AND y | [NOT] LIKE pattern)?
    additive    := multiplicative ((+|-|'||') multiplicative)*
    multiplicative := unary ((*|/|%) unary)*
    unary       := - unary | primary
    primary     := literal | column ref | function call | ( or_expr )
"""

from __future__ import annotations

from repro.minidb.errors import SqlSyntaxError
from repro.minidb.expr import (
    AGGREGATE_FUNCS,
    Between,
    BinaryOp,
    BoolOp,
    ColumnRef,
    Comparison,
    Expr,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    Negate,
    NotOp,
)
from repro.minidb.schema import ColumnDef
from repro.minidb.sql_ast import (
    CreateIndexStmt,
    CreateTableStmt,
    DeleteStmt,
    DropIndexStmt,
    DropTableStmt,
    InsertStmt,
    JoinClause,
    OrderItem,
    SelectItem,
    SelectStmt,
    Statement,
    TableRef,
    UpdateStmt,
)
from repro.minidb.sql_lexer import Token, TokenKind, tokenize
from repro.minidb.types import SqlType


def parse_sql(sql: str) -> Statement:
    """Parse one SQL statement (a single trailing ';' is allowed)."""
    parser = _Parser(tokenize(sql))
    stmt = parser.parse_statement()
    parser.accept_op(";")
    parser.expect_eof()
    return stmt


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.i = 0

    # ------------------------------------------------------------- cursor
    @property
    def cur(self) -> Token:
        return self.tokens[self.i]

    def advance(self) -> Token:
        tok = self.tokens[self.i]
        if tok.kind is not TokenKind.EOF:
            self.i += 1
        return tok

    def error(self, message: str) -> SqlSyntaxError:
        tok = self.cur
        shown = tok.value or "<end of input>"
        return SqlSyntaxError(f"{message}, found {shown!r} at {tok.pos}")

    def accept_kw(self, *names: str) -> Token | None:
        if self.cur.is_kw(*names):
            return self.advance()
        return None

    def expect_kw(self, *names: str) -> Token:
        tok = self.accept_kw(*names)
        if tok is None:
            raise self.error(f"expected {'/'.join(names)}")
        return tok

    def accept_op(self, *ops: str) -> Token | None:
        if self.cur.is_op(*ops):
            return self.advance()
        return None

    def expect_op(self, *ops: str) -> Token:
        tok = self.accept_op(*ops)
        if tok is None:
            raise self.error(f"expected {'/'.join(ops)}")
        return tok

    def expect_ident(self) -> str:
        if self.cur.kind is TokenKind.IDENT:
            return self.advance().value
        raise self.error("expected an identifier")

    def expect_eof(self) -> None:
        if self.cur.kind is not TokenKind.EOF:
            raise self.error("unexpected trailing input")

    # --------------------------------------------------------- statements
    def parse_statement(self) -> Statement:
        if self.cur.is_kw("SELECT"):
            return self.parse_select()
        if self.cur.is_kw("INSERT"):
            return self.parse_insert()
        if self.cur.is_kw("UPDATE"):
            return self.parse_update()
        if self.cur.is_kw("DELETE"):
            return self.parse_delete()
        if self.cur.is_kw("CREATE"):
            return self.parse_create()
        if self.cur.is_kw("DROP"):
            return self.parse_drop()
        raise self.error("expected a statement keyword")

    def parse_select(self) -> SelectStmt:
        self.expect_kw("SELECT")
        distinct = self.accept_kw("DISTINCT") is not None
        items = [self.parse_select_item()]
        while self.accept_op(","):
            items.append(self.parse_select_item())
        self.expect_kw("FROM")
        table = self.parse_table_ref()
        joins: list[JoinClause] = []
        while self.cur.is_kw("JOIN", "INNER", "LEFT"):
            joins.append(self.parse_join())
        where = None
        if self.accept_kw("WHERE"):
            where = self.parse_expr()
        group_by: list[Expr] = []
        if self.accept_kw("GROUP"):
            self.expect_kw("BY")
            group_by.append(self.parse_expr())
            while self.accept_op(","):
                group_by.append(self.parse_expr())
        having = None
        if self.accept_kw("HAVING"):
            having = self.parse_expr()
        order_by: list[OrderItem] = []
        if self.accept_kw("ORDER"):
            self.expect_kw("BY")
            order_by.append(self.parse_order_item())
            while self.accept_op(","):
                order_by.append(self.parse_order_item())
        limit: int | None = None
        offset = 0
        if self.accept_kw("LIMIT"):
            limit = self.parse_nonneg_int("LIMIT")
            if self.accept_kw("OFFSET"):
                offset = self.parse_nonneg_int("OFFSET")
        return SelectStmt(
            items=tuple(items),
            table=table,
            joins=tuple(joins),
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def parse_nonneg_int(self, context: str) -> int:
        if self.cur.kind is not TokenKind.NUMBER:
            raise self.error(f"expected a number after {context}")
        text = self.advance().value
        try:
            value = int(text)
        except ValueError:
            raise self.error(f"{context} must be an integer") from None
        if value < 0:
            raise self.error(f"{context} must be non-negative")
        return value

    def parse_select_item(self) -> SelectItem:
        if self.cur.is_op("*"):
            self.advance()
            return SelectItem(Literal(None), alias=None, is_star=True)
        # alias.* form: IDENT '.' '*'
        if (
            self.cur.kind is TokenKind.IDENT
            and self.tokens[self.i + 1].is_op(".")
            and self.tokens[self.i + 2].is_op("*")
        ):
            alias = self.advance().value
            self.advance()
            self.advance()
            return SelectItem(Literal(None), alias=None, star_table=alias, is_star=True)
        expr = self.parse_expr()
        alias = None
        if self.accept_kw("AS"):
            alias = self.expect_ident()
        elif self.cur.kind is TokenKind.IDENT:
            alias = self.advance().value
        return SelectItem(expr, alias=alias)

    def parse_table_ref(self) -> TableRef:
        table = self.expect_ident()
        alias = table
        if self.accept_kw("AS"):
            alias = self.expect_ident()
        elif self.cur.kind is TokenKind.IDENT:
            alias = self.advance().value
        return TableRef(table=table, alias=alias)

    def parse_join(self) -> JoinClause:
        left_outer = False
        if self.accept_kw("LEFT"):
            left_outer = True
        else:
            self.accept_kw("INNER")
        self.expect_kw("JOIN")
        table = self.parse_table_ref()
        self.expect_kw("ON")
        condition = self.parse_expr()
        return JoinClause(table=table, condition=condition, left_outer=left_outer)

    def parse_order_item(self) -> OrderItem:
        expr = self.parse_expr()
        descending = False
        if self.accept_kw("DESC"):
            descending = True
        else:
            self.accept_kw("ASC")
        return OrderItem(expr, descending)

    def parse_insert(self) -> InsertStmt:
        self.expect_kw("INSERT")
        self.expect_kw("INTO")
        table = self.expect_ident()
        columns: list[str] = []
        if self.accept_op("("):
            columns.append(self.expect_ident())
            while self.accept_op(","):
                columns.append(self.expect_ident())
            self.expect_op(")")
        self.expect_kw("VALUES")
        rows: list[tuple[Expr, ...]] = []
        while True:
            self.expect_op("(")
            row = [self.parse_expr()]
            while self.accept_op(","):
                row.append(self.parse_expr())
            self.expect_op(")")
            rows.append(tuple(row))
            if not self.accept_op(","):
                break
        return InsertStmt(table=table, columns=tuple(columns), rows=tuple(rows))

    def parse_update(self) -> UpdateStmt:
        self.expect_kw("UPDATE")
        table = self.expect_ident()
        self.expect_kw("SET")
        assignments: list[tuple[str, Expr]] = []
        while True:
            col = self.expect_ident()
            self.expect_op("=")
            assignments.append((col, self.parse_expr()))
            if not self.accept_op(","):
                break
        where = self.parse_expr() if self.accept_kw("WHERE") else None
        return UpdateStmt(table=table, assignments=tuple(assignments), where=where)

    def parse_delete(self) -> DeleteStmt:
        self.expect_kw("DELETE")
        self.expect_kw("FROM")
        table = self.expect_ident()
        where = self.parse_expr() if self.accept_kw("WHERE") else None
        return DeleteStmt(table=table, where=where)

    def parse_create(self) -> Statement:
        self.expect_kw("CREATE")
        if self.accept_kw("TABLE"):
            if_not_exists = False
            if self.accept_kw("IF"):
                self.expect_kw("NOT")
                self.expect_kw("EXISTS")
                if_not_exists = True
            table = self.expect_ident()
            self.expect_op("(")
            columns = [self.parse_column_def()]
            while self.accept_op(","):
                columns.append(self.parse_column_def())
            self.expect_op(")")
            return CreateTableStmt(table=table, columns=tuple(columns), if_not_exists=if_not_exists)
        unique = self.accept_kw("UNIQUE") is not None
        self.expect_kw("INDEX")
        name = self.expect_ident()
        self.expect_kw("ON")
        table = self.expect_ident()
        self.expect_op("(")
        column = self.expect_ident()
        self.expect_op(")")
        return CreateIndexStmt(name=name, table=table, column=column, unique=unique)

    def parse_column_def(self) -> ColumnDef:
        name = self.expect_ident()
        if self.cur.kind is TokenKind.IDENT:
            type_name = self.advance().value
        else:
            raise self.error("expected a column type")
        sql_type = SqlType.parse(type_name)
        primary_key = not_null = False
        while True:
            if self.accept_kw("PRIMARY"):
                self.expect_kw("KEY")
                primary_key = True
            elif self.accept_kw("NOT"):
                self.expect_kw("NULL")
                not_null = True
            else:
                break
        return ColumnDef(name=name, sql_type=sql_type, primary_key=primary_key, not_null=not_null)

    def parse_drop(self) -> Statement:
        self.expect_kw("DROP")
        if self.accept_kw("TABLE"):
            if_exists = False
            if self.accept_kw("IF"):
                self.expect_kw("EXISTS")
                if_exists = True
            return DropTableStmt(table=self.expect_ident(), if_exists=if_exists)
        self.expect_kw("INDEX")
        if_exists = False
        if self.accept_kw("IF"):
            self.expect_kw("EXISTS")
            if_exists = True
        return DropIndexStmt(name=self.expect_ident(), if_exists=if_exists)

    # -------------------------------------------------------- expressions
    def parse_expr(self) -> Expr:
        return self.parse_or()

    def parse_or(self) -> Expr:
        left = self.parse_and()
        while self.accept_kw("OR"):
            left = BoolOp("OR", left, self.parse_and())
        return left

    def parse_and(self) -> Expr:
        left = self.parse_not()
        while self.accept_kw("AND"):
            left = BoolOp("AND", left, self.parse_not())
        return left

    def parse_not(self) -> Expr:
        if self.accept_kw("NOT"):
            return NotOp(self.parse_not())
        return self.parse_predicate()

    def parse_predicate(self) -> Expr:
        left = self.parse_additive()
        if self.cur.is_op("=", "!=", "<>", "<", "<=", ">", ">="):
            op = self.advance().value
            return Comparison(op, left, self.parse_additive())
        if self.accept_kw("IS"):
            negated = self.accept_kw("NOT") is not None
            self.expect_kw("NULL")
            return IsNull(left, negated)
        negated = False
        if self.cur.is_kw("NOT"):
            nxt = self.tokens[self.i + 1]
            if nxt.is_kw("IN", "BETWEEN", "LIKE"):
                self.advance()
                negated = True
            else:
                return left
        if self.accept_kw("IN"):
            self.expect_op("(")
            items = [self.parse_expr()]
            while self.accept_op(","):
                items.append(self.parse_expr())
            self.expect_op(")")
            return InList(left, tuple(items), negated)
        if self.accept_kw("BETWEEN"):
            low = self.parse_additive()
            self.expect_kw("AND")
            high = self.parse_additive()
            return Between(left, low, high, negated)
        if self.accept_kw("LIKE"):
            return Like(left, self.parse_additive(), negated)
        if negated:  # pragma: no cover - unreachable by construction
            raise self.error("dangling NOT")
        return left

    def parse_additive(self) -> Expr:
        left = self.parse_multiplicative()
        while self.cur.is_op("+", "-", "||"):
            op = self.advance().value
            left = BinaryOp(op, left, self.parse_multiplicative())
        return left

    def parse_multiplicative(self) -> Expr:
        left = self.parse_unary()
        while self.cur.is_op("*", "/", "%"):
            op = self.advance().value
            left = BinaryOp(op, left, self.parse_unary())
        return left

    def parse_unary(self) -> Expr:
        if self.accept_op("-"):
            return Negate(self.parse_unary())
        if self.accept_op("+"):
            return self.parse_unary()
        return self.parse_primary()

    def parse_primary(self) -> Expr:
        tok = self.cur
        if tok.kind is TokenKind.NUMBER:
            self.advance()
            text = tok.value
            if "." in text or "e" in text or "E" in text:
                return Literal(float(text))
            return Literal(int(text))
        if tok.kind is TokenKind.STRING:
            self.advance()
            return Literal(tok.value)
        if tok.is_kw("NULL"):
            self.advance()
            return Literal(None)
        if tok.is_kw("TRUE"):
            self.advance()
            return Literal(True)
        if tok.is_kw("FALSE"):
            self.advance()
            return Literal(False)
        if tok.is_op("("):
            self.advance()
            inner = self.parse_expr()
            self.expect_op(")")
            return inner
        if tok.kind is TokenKind.IDENT:
            name = self.advance().value
            if self.cur.is_op("("):
                return self.parse_func_call(name)
            if self.accept_op("."):
                column = self.expect_ident()
                return ColumnRef(table=name, column=column)
            return ColumnRef(table=None, column=name)
        raise self.error("expected an expression")

    def parse_func_call(self, name: str) -> Expr:
        upper = name.upper()
        self.expect_op("(")
        if upper in AGGREGATE_FUNCS and self.accept_op("*"):
            self.expect_op(")")
            if upper != "COUNT":
                raise self.error(f"{upper}(*) is only valid for COUNT")
            return FuncCall(upper, (), star=True)
        args: list[Expr] = []
        if not self.cur.is_op(")"):
            args.append(self.parse_expr())
            while self.accept_op(","):
                args.append(self.parse_expr())
        self.expect_op(")")
        return FuncCall(upper, tuple(args))
