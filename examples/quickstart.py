#!/usr/bin/env python
"""Quickstart: publish one dataset, discover it, query it, chart it.

Walks the full Figure 3 interaction in ~40 lines of user code:

1. stand up a grid (container + UDDI registry),
2. publish the HPL dataset behind Application/Execution Grid services,
3. discover it through the registry and bind (creating an Application
   service instance via its Factory),
4. query Executions by attribute, query Performance Results, and render
   the Figure 11-style chart.

Run: ``python examples/quickstart.py``
"""

from repro.core import PPerfGridClient, PPerfGridSite, SiteConfig
from repro.core.visualize import render_metric_chart
from repro.datastores import generate_hpl
from repro.mapping import HplRdbmsWrapper
from repro.ogsi import GridEnvironment
from repro.uddi import UddiClient, UddiRegistryServer


def main() -> None:
    # --- grid + registry -------------------------------------------------
    env = GridEnvironment()
    registry_container = env.create_container("registry.example.org:9090")
    uddi_gsh = registry_container.deploy("services/uddi", UddiRegistryServer())

    # --- publisher side ---------------------------------------------------
    dataset = generate_hpl(seed=7, num_executions=124)
    site = PPerfGridSite(
        env,
        SiteConfig(authority="siteA.example.org:8080", app_name="HPL"),
        HplRdbmsWrapper(dataset.to_database()),
    )
    uddi = UddiClient.connect(env, uddi_gsh)
    org_key = uddi.publish_organization("Example HPC Lab", "admin@example.org")
    site.publish(uddi, org_key, "High-Performance Linpack runs")

    # --- consumer side ----------------------------------------------------
    client = PPerfGridClient(env, uddi_gsh.url())
    org = client.discover_organizations("Example%")[0]
    service = org.services()[0]
    print(f"Discovered service {service.name!r} at {service.factory_url}")

    app = client.bind(service)
    print("Application info:", app.app_info())
    print("Executions available:", app.num_executions())
    params = app.exec_query_params()
    print("Queryable attributes:", sorted(params))

    # The thesis's running example: runs with 16 processes.
    executions = app.query_executions("numprocs", "16")
    print(f"\nExecutions with numprocs=16: {len(executions)}")

    results = {}
    for execution in executions[:10]:
        results[execution.gsh] = execution.get_pr("gflops", ["/Run"])
    print()
    print(render_metric_chart(results, "gflops"))

    # Bytes really moved through the SOAP transport:
    rec = env.recorder
    print(
        f"\nTransport: {rec.count('transport.calls')} calls, "
        f"{rec.bytes_total:,} bytes total"
    )


if __name__ == "__main__":
    main()
