"""PPerfGrid core: the Semantic and Virtualization layers.

Semantic layer (thesis §4.4/§5.3)
    :class:`ApplicationService` and :class:`ExecutionService` — the
    Application/Execution semantic objects deployed as Grid services —
    plus the :class:`ManagerService` (Execution-GSH caching and replica
    distribution) and the Performance-Result cache.

Virtualization layer (thesis §4.6/§5.5)
    :class:`PPerfGridClient` and the virtual objects / query panels the
    Swing GUI exposes in Figures 8-11, as library APIs.

Deployment helper
    :class:`PPerfGridSite` wires one published dataset: container,
    wrappers, factories, Manager, UDDI entry.
"""

from repro.core.semantic import (
    APPLICATION_PORTTYPE,
    EXECUTION_PORTTYPE,
    MANAGER_PORTTYPE,
    PPERFGRID_NS,
    UNDEFINED_TYPE,
    AggregateRecord,
    PerformanceResult,
    application_porttype_table,
    execution_porttype_table,
    pr_agg_cache_key,
    pr_cache_key,
)
from repro.core.prcache import (
    AdaptiveCache,
    CacheStats,
    LruCache,
    NullCache,
    PrCache,
    UnboundedCache,
)
from repro.core.application import ApplicationService
from repro.core.execution import ExecutionService
from repro.core.manager import (
    DistributionPolicy,
    InterleavedPolicy,
    LeastLoadedPolicy,
    BlockPolicy,
    ManagerService,
    RandomPolicy,
)
from repro.core.client import (
    ApplicationBinding,
    ApplicationQuery,
    ApplicationQueryPanel,
    AsyncQueryCollector,
    ExecutionBinding,
    ExecutionQuery,
    ExecutionQueryPanel,
    PPerfGridClient,
)
from repro.core.compare import (
    ExecutionComparison,
    MetricTable,
    ScalingStudy,
    aggregate_by_focus,
    collect_metric,
    compare_executions,
    scaling_study,
)
from repro.core.session import PPerfGridSite, SiteConfig
from repro.core.visualize import render_metric_chart

__all__ = [
    "APPLICATION_PORTTYPE",
    "AdaptiveCache",
    "AggregateRecord",
    "ApplicationBinding",
    "ApplicationQuery",
    "ApplicationQueryPanel",
    "ApplicationService",
    "AsyncQueryCollector",
    "BlockPolicy",
    "CacheStats",
    "DistributionPolicy",
    "EXECUTION_PORTTYPE",
    "ExecutionBinding",
    "ExecutionComparison",
    "ExecutionQuery",
    "ExecutionQueryPanel",
    "ExecutionService",
    "MetricTable",
    "ScalingStudy",
    "aggregate_by_focus",
    "collect_metric",
    "compare_executions",
    "scaling_study",
    "InterleavedPolicy",
    "LeastLoadedPolicy",
    "LruCache",
    "MANAGER_PORTTYPE",
    "ManagerService",
    "NullCache",
    "PPERFGRID_NS",
    "PPerfGridClient",
    "PPerfGridSite",
    "PerformanceResult",
    "PrCache",
    "RandomPolicy",
    "SiteConfig",
    "UNDEFINED_TYPE",
    "UnboundedCache",
    "application_porttype_table",
    "execution_porttype_table",
    "pr_agg_cache_key",
    "pr_cache_key",
    "render_metric_chart",
]
