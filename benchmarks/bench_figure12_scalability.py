"""Figure 12 — scalability via replica-host distribution.

Regenerates the figure's two series (non-optimized = one host, optimized
= two replica hosts, Manager interleaving) over the thesis's fan-out
range {2, 4, 8, 16, 32, 64, 124} and asserts:

* optimized is faster at every point;
* mean speedup is ~2 with two hosts (paper: 2.14);
* times grow monotonically with fan-out in both arms.

Rounds are reduced from the paper's 10 to 3 to keep the bench under a
minute; the replay makes the result insensitive to this (each query's
cost is measured once and placed deterministically).
"""

from conftest import write_result

from repro.experiments.scalability import run_scalability_experiment


def test_figure12_regeneration(benchmark):
    result = benchmark.pedantic(
        run_scalability_experiment,
        kwargs={"counts": (2, 4, 8, 16, 32, 64, 124), "repeats": 10, "rounds": 3},
        rounds=1,
        iterations=1,
    )
    text = result.to_table() + "\n\n" + result.to_chart()
    write_result("figure12_scalability.txt", text)

    assert 1.85 <= result.mean_speedup <= 2.1  # paper: 2.14
    for nonopt, opt in zip(result.nonoptimized_s, result.optimized_s):
        assert opt < nonopt
    assert result.nonoptimized_s == sorted(result.nonoptimized_s)
    assert result.optimized_s == sorted(result.optimized_s)


def test_four_replica_extension(benchmark):
    """Extension: the paper predicts distribution scales with replica count."""
    result = benchmark.pedantic(
        run_scalability_experiment,
        kwargs={"counts": (16, 32), "repeats": 5, "rounds": 2, "replicas": 4},
        rounds=1,
        iterations=1,
    )
    write_result("figure12_four_replicas.txt", result.to_table())
    assert 3.4 <= result.mean_speedup <= 4.1
