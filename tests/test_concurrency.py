"""Concurrency tests: threaded clients against shared containers."""

import threading

import pytest

from repro.core import ExecutionQuery, ExecutionQueryPanel, PPerfGridClient, PPerfGridSite, SiteConfig
from repro.datastores import generate_hpl
from repro.mapping import HplRdbmsWrapper
from repro.ogsi import (
    GRID_SERVICE_PORTTYPE,
    GridEnvironment,
    GridServiceBase,
    NotificationSinkBase,
)
from repro.ogsi.cursor import ResultCursorService, deploy_cursor
from repro.ogsi.notification import NotificationSourceMixin
from repro.ogsi.porttypes import NOTIFICATION_SOURCE_PORTTYPE
from repro.simnet.clock import VirtualClock
from repro.soap.chunks import decode_chunk
from repro.wsdl import Operation, Parameter, PortType

CHATTY_PORTTYPE = PortType(
    "Chatty",
    "urn:chatty",
    (Operation("touch", (Parameter("msg", "xsd:string"),), "xsd:int"),),
    extends=(GRID_SERVICE_PORTTYPE, NOTIFICATION_SOURCE_PORTTYPE),
)


class ChattySource(GridServiceBase, NotificationSourceMixin):
    """A source whose ``touch`` op notifies subscribers *mid-dispatch* —
    the shape that deadlocked under whole-container locking."""

    porttype = CHATTY_PORTTYPE

    def __init__(self) -> None:
        super().__init__()
        self._init_notification_source()

    def touch(self, msg: str) -> int:
        return self.notify("updates", msg)


class TestCrossContainerNotification:
    """Regression: two containers notifying into each other concurrently.

    Under the old per-container ``RLock``, thread 1 held container A's
    lock (dispatching ``touch``) while delivering into container B, and
    thread 2 held B's lock while delivering into A — a lock-ordering
    deadlock that hung both clients forever.  Notification delivery now
    runs under ``suspend_dispatch()`` (no dispatch state held across the
    outbound SOAP call), so this completes.
    """

    ITERATIONS = 50

    def test_mutual_notification_storm_completes(self):
        env = GridEnvironment()
        container_a = env.create_container("a:1")
        container_b = env.create_container("b:1")

        source_a, source_b = ChattySource(), ChattySource()
        gsh_a = container_a.deploy("services/source", source_a)
        gsh_b = container_b.deploy("services/source", source_b)

        received_a: list[str] = []
        received_b: list[str] = []
        sink_a = NotificationSinkBase(callback=lambda t, m: received_a.append(m))
        sink_b = NotificationSinkBase(callback=lambda t, m: received_b.append(m))
        sink_a_gsh = container_a.deploy("services/sink", sink_a)
        sink_b_gsh = container_b.deploy("services/sink", sink_b)

        # cross-wired: A's source delivers into B's container and vice versa
        source_a.SubscribeToNotificationTopic("updates", sink_b_gsh.url(), 0.0)
        source_b.SubscribeToNotificationTopic("updates", sink_a_gsh.url(), 0.0)

        barrier = threading.Barrier(2)
        delivered: dict[str, int] = {}
        errors: list[BaseException] = []

        def hammer(label: str, gsh) -> None:
            try:
                stub = env.stub_for_handle(gsh, CHATTY_PORTTYPE)
                barrier.wait(timeout=5.0)
                total = 0
                for i in range(self.ITERATIONS):
                    total += stub.touch(f"{label}-{i}")
                delivered[label] = total
            except BaseException as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=("a", gsh_a), daemon=True),
            threading.Thread(target=hammer, args=("b", gsh_b), daemon=True),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        # daemon threads + bounded join: a deadlock fails the assert
        # instead of hanging the suite
        assert not any(t.is_alive() for t in threads), "cross-notify deadlocked"
        assert not errors
        assert delivered == {"a": self.ITERATIONS, "b": self.ITERATIONS}
        assert len(received_a) == self.ITERATIONS  # from B's source
        assert len(received_b) == self.ITERATIONS  # from A's source


class TestSweepVsDispatch:
    """Regression: the lifetime sweep racing an in-flight cursor ``next()``.

    The old sweep popped services and called ``Destroy()`` with no
    synchronization against dispatch — a cursor could be destroyed while
    ``next()`` was mid-chunk, corrupting ``_seq``/``_pending`` or
    faulting a renewal that should have succeeded.  Sweeps now take each
    victim's dispatch gate and re-check expiry under it, so an in-flight
    ``next()`` (which renews the TTL) always wins.
    """

    def test_sweep_cannot_destroy_cursor_mid_next(self):
        env = GridEnvironment(clock=VirtualClock())
        container = env.create_container("c:1")
        entered = threading.Event()
        resume = threading.Event()

        def rows():
            for i in range(40):
                if i == 10:
                    entered.set()
                    assert resume.wait(timeout=10.0)
                yield f"row-{i:03d}"

        gsh = deploy_cursor(container, "services/q", rows(), ttl=30.0)
        stub = env.stub_for_handle(gsh, ResultCursorService.porttype)

        drained: list[str] = []
        failures: list[BaseException] = []

        def drain() -> None:
            try:
                while True:
                    envelope = decode_chunk(list(stub.next(8)))
                    drained.extend(envelope.rows)
                    if envelope.done:
                        return
            except BaseException as exc:  # noqa: BLE001 - collected for assert
                failures.append(exc)

        consumer = threading.Thread(target=drain, daemon=True)
        consumer.start()
        assert entered.wait(timeout=5.0)  # next() is mid-chunk, gate held

        # the cursor is now expired by the wall clock...
        env.clock.advance(60.0)
        sweep_done = threading.Event()
        swept: list[int] = []

        def sweep() -> None:
            swept.append(container.sweep_expired())
            sweep_done.set()

        sweeper = threading.Thread(target=sweep, daemon=True)
        sweeper.start()
        # ...but the sweep must block on the cursor's gate, not destroy it
        assert not sweep_done.wait(timeout=0.2)
        resume.set()  # let next() finish; it renews the TTL under the gate
        assert sweep_done.wait(timeout=10.0), "sweep never finished"
        consumer.join(timeout=10.0)
        assert not failures
        assert swept == [0]  # the renewal won: nothing was reclaimed
        assert drained == [f"row-{i:03d}" for i in range(40)]
        # with no renewal, the same sweep does reclaim it
        env.clock.advance(60.0)
        assert container.sweep_expired() == 1

    def test_sweep_storm_against_live_cursor_traffic(self):
        """Many sweeps racing many ``next()`` calls: every row arrives
        exactly once and nothing faults (drove the old corruption)."""
        env = GridEnvironment(clock=VirtualClock())
        container = env.create_container("c:1")
        total = 400
        gsh = deploy_cursor(
            container, "services/q", (f"row-{i}" for i in range(total)), ttl=30.0
        )
        stub = env.stub_for_handle(gsh, ResultCursorService.porttype)
        stop = threading.Event()
        sweep_errors: list[BaseException] = []

        def sweep_loop() -> None:
            try:
                while not stop.is_set():
                    container.sweep_expired()
            except BaseException as exc:  # noqa: BLE001
                sweep_errors.append(exc)

        sweeper = threading.Thread(target=sweep_loop, daemon=True)
        sweeper.start()
        drained: list[str] = []
        try:
            while True:
                envelope = decode_chunk(list(stub.next(16)))
                drained.extend(envelope.rows)
                env.clock.advance(10.0)  # age the cursor between chunks
                if envelope.done:
                    break
        finally:
            stop.set()
            sweeper.join(timeout=5.0)
        assert not sweep_errors
        assert drained == [f"row-{i}" for i in range(total)]


@pytest.fixture()
def env_site():
    env = GridEnvironment()
    site = PPerfGridSite(
        env,
        SiteConfig("s:1", "HPL"),
        HplRdbmsWrapper(generate_hpl(num_executions=12).to_database()),
    )
    return env, site


class TestThreadedClients:
    def test_many_threads_querying_one_site(self, env_site):
        env, site = env_site
        client = PPerfGridClient(env)
        app = client.bind(site.factory_url, "HPL")
        executions = app.all_executions()
        errors: list[BaseException] = []
        results: dict[int, float] = {}

        def worker(thread_id: int) -> None:
            try:
                execution = executions[thread_id % len(executions)]
                for _ in range(10):
                    prs = execution.get_pr("gflops", ["/Run"])
                    results[thread_id] = prs[0].value
            except BaseException as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(results) == 16

    def test_threaded_binds_get_unique_instances(self, env_site):
        env, site = env_site
        client = PPerfGridClient(env)
        bindings: list = []
        lock = threading.Lock()
        errors: list[BaseException] = []

        def binder() -> None:
            try:
                binding = client.bind(site.factory_url, "HPL")
                with lock:
                    bindings.append(binding)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=binder) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        gshs = [b.gsh for b in bindings]
        assert len(set(gshs)) == 8  # GSH uniqueness held under contention

    def test_parallel_panel_under_contention(self, env_site):
        env, site = env_site
        client = PPerfGridClient(env)
        app = client.bind(site.factory_url, "HPL")
        panel = ExecutionQueryPanel(executions=app.all_executions())
        panel.add_query(ExecutionQuery("gflops", ["/Run"]))
        panel.add_query(ExecutionQuery("runtimesec", ["/Run"]))
        parallel = panel.run_queries_parallel(max_workers=12)
        serial = panel.run_queries()
        assert parallel == serial

    def test_concurrent_manager_requests_share_instance_cache(self, env_site):
        env, site = env_site
        client = PPerfGridClient(env)
        app = client.bind(site.factory_url, "HPL")
        all_results: list[list[str]] = []
        lock = threading.Lock()

        def fetch() -> None:
            gshs = [e.gsh for e in app.all_executions()]
            with lock:
                all_results.append(gshs)

        threads = [threading.Thread(target=fetch) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Dispatch serialization makes the Manager's cache coherent: every
        # thread saw the same instance handles, and only 12 were created.
        assert all(r == all_results[0] for r in all_results)
        assert site.manager.creations == 12
