"""Tests for WSDL-driven dynamic binding (the Figure 1 workflow)."""

import pytest

from repro.core.client import ApplicationBinding
from repro.ogsi import GridEnvironment, GridServiceBase, GshError
from repro.wsdl import parse_wsdl
from repro.xmlkit import parse


class TestWsdlServiceData:
    def test_every_service_publishes_wsdl(self, shared_grid):
        container = shared_grid.environment.container_for("hpl.pdx.edu:8080")
        for path in container.service_paths():
            service = container.service_at(path)
            sde = service.service_data.get("wsdl")
            assert sde is not None and sde.values

    def test_published_wsdl_parses_to_own_porttype(self, shared_grid):
        site = shared_grid.hpl_site
        wsdl_text = site.application_factory.service_data.get("wsdl").values[0]
        porttype, endpoint = parse_wsdl(wsdl_text)
        assert porttype.has_operation("CreateService")
        assert endpoint == site.application_factory_gsh.endpoint_url()

    def test_wsdl_reachable_through_find_service_data(self, shared_grid):
        app = shared_grid.bind("HPL")
        result = app.stub.FindServiceData("wsdl")
        sde = parse(result).root.find("serviceDataElement")
        wsdl_text = sde.find("value").text()
        porttype, _ = parse_wsdl(wsdl_text)
        assert porttype.has_operation("getExecs")
        assert porttype.has_operation("getPR") is False


class TestBindDynamic:
    def test_dynamic_binding_matches_static(self, fresh_grid):
        services = {
            s.name: s
            for o in fresh_grid.client.discover_organizations()
            for s in o.services()
        }
        static = fresh_grid.client.bind(services["HPL"])
        dynamic = fresh_grid.client.bind_dynamic(services["HPL"])
        assert isinstance(dynamic, ApplicationBinding)
        assert dynamic.app_info() == static.app_info()
        assert dynamic.num_executions() == static.num_executions()
        assert dynamic.exec_query_params() == static.exec_query_params()

    def test_dynamic_binding_end_to_end_query(self, fresh_grid):
        services = {
            s.name: s
            for o in fresh_grid.client.discover_organizations()
            for s in o.services()
        }
        app = fresh_grid.client.bind_dynamic(services["PRESTA-RMA"])
        executions = app.all_executions()
        results = executions[0].get_pr("latency_us", ["/Op/MPI_Put"])
        assert len(results) == 20

    def test_dynamic_binding_by_raw_url(self, fresh_grid):
        app = fresh_grid.client.bind_dynamic(fresh_grid.hpl_site.factory_url, "HPL")
        assert app.num_executions() > 0
        assert app in fresh_grid.client.bindings

    def test_dynamic_stub_unknown_op_fails_client_side(self, fresh_grid):
        app = fresh_grid.client.bind_dynamic(fresh_grid.hpl_site.factory_url, "HPL")
        with pytest.raises(AttributeError):
            app.stub.getPR  # Execution op, not on the Application interface


class TestStubFromWsdl:
    def test_missing_wsdl_sde_raises(self):
        env = GridEnvironment()
        container = env.create_container("s:1")

        class Bare(GridServiceBase):
            pass

        service = Bare()
        gsh = container.deploy("services/bare", service)
        service.service_data.remove("wsdl")
        with pytest.raises(GshError):
            env.stub_from_wsdl(gsh)

    def test_stub_from_wsdl_grid_service_ops_work(self, fresh_grid):
        stub = fresh_grid.environment.stub_from_wsdl(fresh_grid.hpl_site.factory_url)
        xml = stub.FindServiceData("interfaces")
        assert "Factory" in xml
