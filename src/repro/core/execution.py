"""The Execution Grid service (thesis §5.3.2, Table 2).

An Execution instance is transient and stateful: created by the
Execution Factory (usually via the Manager), it carries its execution
wrapper, its Performance-Result cache, and — per future-work §7 — a
NotificationSource so clients can subscribe to data-store updates.
"""

from __future__ import annotations

from repro.core.prcache import PrCache, UnboundedCache
from repro.core.semantic import (
    EXECUTION_PORTTYPE,
    PerformanceResult,
    pr_agg_cache_key,
    pr_cache_key,
    pr_sort_key,
)
from repro.mapping.base import ExecutionWrapper
from repro.ogsi.cursor import DEFAULT_CURSOR_TTL, deploy_cursor
from repro.ogsi.notification import NotificationSourceMixin
from repro.ogsi.service import GridServiceBase
from repro.soap.chunks import WIRE_ENCODINGS

#: estimated memory (MB) charged to the host per cached entry, for the
#: Service-Data-Provider-driven adaptive policy
_CACHE_ENTRY_MB = 0.01


class ExecutionService(GridServiceBase, NotificationSourceMixin):
    """One Execution semantic object exposed as a Grid service."""

    porttype = EXECUTION_PORTTYPE

    def __init__(
        self,
        wrapper: ExecutionWrapper,
        exec_id: str,
        cache: PrCache | None = None,
    ) -> None:
        super().__init__()
        self._init_notification_source()
        self.wrapper = wrapper
        self.exec_id = exec_id
        self.cache = cache if cache is not None else UnboundedCache()
        #: data generation: bumped on every data_updated(), so clients
        #: can detect results computed against a superseded store state
        self.generation = 0
        #: soft-state lifetime granted to getPRChunked cursors; renewed
        #: on every next(), swept by the container when it lapses
        self.cursor_ttl: float = DEFAULT_CURSOR_TTL
        #: wire encodings this execution's cursors may serve (negotiated
        #: per cursor; ``("xml",)`` pins a member to per-row transfers)
        self.wire_encodings: tuple[str, ...] = WIRE_ENCODINGS

    def on_deployed(self, container, gsh) -> None:
        super().on_deployed(container, gsh)
        self.service_data.set("execId", self.exec_id)
        self.service_data.set("generation", str(self.generation))
        self._publish_cache_stats()
        # Future-work §7: expose metrics/foci/types/time as SDEs so an
        # XPath FindServiceData query can answer discovery questions.
        self.service_data.set("metrics", self.wrapper.get_metrics())
        self.service_data.set("foci", self.wrapper.get_foci())
        self.service_data.set("types", self.wrapper.get_types())
        start, end = self.wrapper.get_time_start_end()
        self.service_data.set("timeStartEnd", [repr(start), repr(end)])

    # ----------------------------------------------- Table 2 operations
    def getInfo(self) -> list[str]:
        self.require_active()
        return [f"{name}|{value}" for name, value in self.wrapper.get_info()]

    def getFoci(self) -> list[str]:
        self.require_active()
        return self.wrapper.get_foci()

    def getMetrics(self) -> list[str]:
        self.require_active()
        return self.wrapper.get_metrics()

    def getTypes(self) -> list[str]:
        self.require_active()
        return self.wrapper.get_types()

    def getTimeStartEnd(self) -> list[str]:
        self.require_active()
        start, end = self.wrapper.get_time_start_end()
        return [repr(start), repr(end)]

    def getPR(
        self,
        metric: str,
        foci: list[str],
        startTime: str,
        endTime: str,
        resultType: str,
    ) -> list[str]:
        """Query Performance Results, consulting the PR cache first."""
        self.require_active()
        key = pr_cache_key(metric, list(foci), startTime, endTime, resultType)
        cached = self.cache.get(key)
        if cached is not None:
            return list(cached)
        try:
            start = float(startTime)
            end = float(endTime)
        except ValueError as exc:
            raise ValueError(f"bad time bound: {exc}") from exc
        results = self.wrapper.get_pr(metric, list(foci), start, end, resultType)
        packed = [pr.pack() for pr in results]
        self.cache.put(key, packed)
        if self.container is not None and self.container.host is not None:
            self.container.host.allocate_memory(_CACHE_ENTRY_MB)
        return packed

    def getPRAgg(
        self,
        metric: str,
        foci: list[str],
        startTime: str,
        endTime: str,
        resultType: str,
        minValue: str,
        maxValue: str,
        groupBy: str,
    ) -> list[str]:
        """Server-side aggregation (the federated push-down operation).

        Matching Performance Results are reduced to combinable
        count/total/min/max buckets at the store — RDBMS wrappers answer
        with real SQL, others reduce in the Mapping Layer — so only the
        buckets cross the wire.  ``minValue``/``maxValue`` are inclusive
        value bounds (empty string = unbounded); ``groupBy`` is ``""`` or
        ``"focus"``.  Results share the Execution's PR cache under a
        distinct key space, so Table 5 caching applies here too.
        """
        self.require_active()
        if groupBy not in ("", "focus"):
            raise ValueError(f"unsupported groupBy {groupBy!r}")
        key = pr_agg_cache_key(
            metric, list(foci), startTime, endTime, resultType,
            minValue, maxValue, groupBy,
        )
        cached = self.cache.get(key)
        if cached is not None:
            return list(cached)
        try:
            start = float(startTime)
            end = float(endTime)
            min_value = float(minValue) if minValue else None
            max_value = float(maxValue) if maxValue else None
        except ValueError as exc:
            raise ValueError(f"bad getPRAgg bound: {exc}") from exc
        records = self.wrapper.get_pr_aggregate(
            metric, list(foci), start, end, resultType,
            min_value, max_value, groupBy,
        )
        packed = [record.pack() for record in records]
        self.cache.put(key, packed)
        if self.container is not None and self.container.host is not None:
            self.container.host.allocate_memory(_CACHE_ENTRY_MB)
        return packed

    def getPRChunked(
        self,
        metric: str,
        foci: list[str],
        startTime: str,
        endTime: str,
        resultType: str,
        ordered: bool,
    ) -> str:
        """Like getPR, but answered through a ResultCursor instance.

        Deploys a transient cursor under this Execution's path (the same
        factory/instance idiom as the Execution itself) and returns its
        GSH; the client drains it with ``next(maxRows)``/``close()``.

        Two server-side profiles, chosen by ``ordered``:

        * ``ordered=False`` streams the wrapper's lazy ``iter_pr`` scan
          in store order — O(chunk) server memory, the profile for big
          single-store drains;
        * ``ordered=True`` sorts the result by the canonical
          ``pr_sort_key`` first (O(result) server memory, packed
          incrementally) — what the federated streaming merge needs to
          reproduce bulk ordering exactly.

        Chunked transfers bypass the PR cache in both directions: the
        large results this path exists for are precisely the entries a
        byte-bounded cache would immediately evict.  A live cursor is a
        point-in-time scan — a ``data_updated()`` mid-drain can surface
        in later chunks; the ``generation`` SDE lets clients detect it.
        """
        self.require_active()
        if self.container is None:
            raise RuntimeError("Execution service is not deployed")
        try:
            start = float(startTime)
            end = float(endTime)
        except ValueError as exc:
            raise ValueError(f"bad time bound: {exc}") from exc
        if ordered:
            results = self.wrapper.get_pr(metric, list(foci), start, end, resultType)
            results.sort(key=pr_sort_key)
            rows = (pr.pack() for pr in results)
        else:
            rows = (
                pr.pack()
                for pr in self.wrapper.iter_pr(metric, list(foci), start, end, resultType)
            )
        assert self.gsh is not None
        gsh = deploy_cursor(
            self.container, self.gsh.path, rows,
            ttl=self.cursor_ttl, encodings=self.wire_encodings,
        )
        return gsh.url()

    def getStats(self) -> list[str]:
        """Store statistics for the cost-based planner (packed records).

        Delegates to the Mapping Layer, whose wrappers answer with cheap
        native queries (SQL aggregates, header scans) where possible.
        """
        self.require_active()
        records = self.wrapper.get_stats().pack_records()
        self.service_data.set("storeStats", records)
        return records

    def getPRAsync(
        self,
        metric: str,
        foci: list[str],
        startTime: str,
        endTime: str,
        resultType: str,
        sinkHandle: str,
    ) -> str:
        """Registry-callback query (§7 extension).

        Runs the query and pushes the packed results to *sinkHandle* as a
        notification on topic ``pr-result/<query-id>``; the message body
        is the newline-joined result array ('|' is taken by the record
        format).  Returns the query id.  Query failures are delivered on
        topic ``pr-error/<query-id>`` instead of faulting the submit call
        — the submitter may long since have moved on.
        """
        self.require_active()
        if self.container is None:
            raise RuntimeError("Execution service is not deployed")
        self._async_counter = getattr(self, "_async_counter", 0) + 1
        query_id = f"query-{self.exec_id}-{self._async_counter}"
        from repro.ogsi.porttypes import NOTIFICATION_SINK_PORTTYPE

        stub = self.container.environment.stub_for_handle(
            sinkHandle, NOTIFICATION_SINK_PORTTYPE
        )
        try:
            packed = self.getPR(metric, foci, startTime, endTime, resultType)
        except Exception as exc:
            stub.DeliverNotification(f"pr-error/{query_id}", str(exc))
            return query_id
        stub.DeliverNotification(f"pr-result/{query_id}", "\n".join(packed))
        return query_id

    # ---------------------------------------------------- cache stats SDE
    def _publish_cache_stats(self) -> None:
        """Publish the PR cache's counters as the ``cacheStats`` SDE."""
        records = self.cache.stats.as_records()
        records.append(f"entries|{len(self.cache)}")
        if hasattr(self.cache, "approx_bytes"):
            records.append(f"bytesUsed|{self.cache.approx_bytes}")
            records.append(f"maxBytes|{self.cache.max_bytes}")
        self.service_data.set("cacheStats", records)

    def FindServiceData(self, queryExpression: str) -> str:
        """GridService query, with cache counters refreshed lazily.

        The counters change on every ``getPR``; re-rendering the SDE per
        lookup (rather than per cache access) keeps the hot query path
        free of bookkeeping while ``findServiceData`` always sees current
        hit/miss/eviction numbers.
        """
        self._publish_cache_stats()
        return super().FindServiceData(queryExpression)

    # -------------------------------------------------------- lifecycle
    def on_destroyed(self) -> None:
        if self.container is not None and self.container.host is not None:
            self.container.host.release_memory(_CACHE_ENTRY_MB * len(self.cache))
        self.cache.clear()

    # --------------------------------------------------- update support
    def data_updated(self, description: str = "") -> int:
        """Notify subscribers that the underlying data store changed.

        Ordering matters for coherence: the generation is bumped and the
        PR cache cleared *before* the notification goes out, so a
        subscriber that re-queries from inside its delivery callback can
        never replay pre-update packed results, and any in-flight reader
        holding the old generation can recognize its results as
        superseded.  Discovery SDEs are refreshed too.  Returns the
        number of push deliveries made.

        The notification body is ``execId|generation|sourceHandle|description``
        — the handle disambiguates executions whose ids collide across
        Applications (runids restart at 1 per store).
        """
        self.require_active()
        self.generation += 1
        self.cache.clear()
        self.service_data.set("generation", str(self.generation))
        self.service_data.set("metrics", self.wrapper.get_metrics())
        self.service_data.set("foci", self.wrapper.get_foci())
        start, end = self.wrapper.get_time_start_end()
        self.service_data.set("timeStartEnd", [repr(start), repr(end)])
        if self.service_data.get("storeStats") is not None:
            # Refresh published stats so a post-update FindServiceData
            # never reads pre-update row counts or value ranges.
            self.service_data.set("storeStats", self.wrapper.get_stats().pack_records())
        source = self.gsh.url() if self.gsh is not None else ""
        return self.notify(
            "data-update", f"{self.exec_id}|{self.generation}|{source}|{description}"
        )

    def announce_update(self, description: str) -> int:
        """Back-compat alias for :meth:`data_updated`."""
        return self.data_updated(description)

    def unpack_results(self, packed: list[str]) -> list[PerformanceResult]:
        """Convenience for in-process callers/tests."""
        return [PerformanceResult.unpack(p) for p in packed]
