"""Federated fan-out at MDS2-style concurrency: pooled vs per-query.

The grid information-service studies (MDS2 and kin) measured the same
collapse this benchmark reproduces: per-request resource churn — thread
create/join per query in our legacy executor — dominates long before
the member stores saturate, and one flooding client starves everyone
else unless the scheduler is tenant-aware.  Three scenarios:

* **Fan-out latency vs concurrent drivers** (the gate) — drives the
  fan-out layer directly, the way MDS2's scalability study drove the
  GRIS: each simulated query fans a fixed-width burst of fast member
  calls through one of three arms: the legacy per-query
  ``ThreadPoolExecutor`` (exactly what ``FederationEngine``'s legacy
  branch builds and tears down per query), the engine-lifetime pooled
  scheduler in FIFO mode, and the pooled scheduler with per-tenant
  fair queueing.  The gate: at the top of the sweep the pooled arms
  answer with a p50 at least **2x** better than legacy — warm workers
  vs per-query thread create/join churn.

* **End-to-end engine curve** (informational) — the same three arms
  behind the full engine stack (parse, plan, member SOAP dispatch,
  FIRST_COMPLETED merge) over a wide synthetic federation, every query
  text unique so the plan cache never answers.  On a small host the
  engine's own CPU dominates and the arms converge, so this curve
  records the full-stack numbers and asserts pool invariants instead
  of a latency ratio.

* **Minority-tenant p99 under a flooding tenant** — one tenant keeps
  hundreds of tasks queued; a minority tenant submits one task at a
  time.  With fair queueing its p99 stays within **3x** of the
  uncontended baseline (round-robin admits it every rotation); with one
  global FIFO its p99 grows with the flood backlog — starvation.

``FEDQUERY_BENCH_QUICK=1`` (the CI mode) shrinks the federation and the
sweeps so the file runs in seconds while asserting the same shape.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor, wait

from conftest import write_json, write_result

from repro.core.client import PPerfGridClient
from repro.core.semantic import PerformanceResult
from repro.experiments.common import build_synthetic_grid
from repro.fedquery.executor import FederationEngine
from repro.fedquery.scheduler import FanoutScheduler
from repro.mapping.memory import InMemoryExecution, InMemoryWrapper

QUICK = os.environ.get("FEDQUERY_BENCH_QUICK", "") not in ("", "0")

#: gate scenario: member calls fanned per simulated query
FANOUT = 8
#: gate scenario: concurrent driver threads (simulated clients)
GATE_DRIVER_SWEEP = (8, 32) if QUICK else (8, 32, 64)
GATE_QUERIES_PER_DRIVER = 8 if QUICK else 16
#: pool width for the pooled arms (legacy sizes a pool per query)
POOL_WORKERS = 16 if QUICK else 32

#: end-to-end curve: federation width — the "hundreds of hosts" axis
MEMBERS = 12 if QUICK else 96
E2E_DRIVER_SWEEP = (4, 16) if QUICK else (8, 32)
E2E_QUERIES_PER_DRIVER = 5 if QUICK else 16

#: fairness scenario: modeled member-call time (sleep: I/O, GIL-free)
TASK_S = 0.005
FLOOD_DEPTH = 100 if QUICK else 200
MINORITY_PROBES = 20 if QUICK else 40
FAIR_WORKERS = 4

_unique = itertools.count()


def _rows(count: int, base: float) -> list[PerformanceResult]:
    return [
        PerformanceResult("m", "/R", "s", float(i), float(i + 1), base + i)
        for i in range(count)
    ]


def _percentile(sorted_values: list[float], p: float) -> float:
    if not sorted_values:
        return float("nan")
    return sorted_values[min(len(sorted_values) - 1, int(p * len(sorted_values)))]


def _drive_threads(query_fn, drivers: int, queries: int) -> dict:
    """Run ``query_fn(driver, q)`` from ``drivers`` concurrent threads."""
    latencies: list[float] = []
    lock = threading.Lock()
    barrier = threading.Barrier(drivers + 1)

    def run(driver: int) -> None:
        mine: list[float] = []
        barrier.wait(timeout=60.0)
        for q in range(queries):
            t0 = time.perf_counter()
            query_fn(driver, q)
            mine.append(time.perf_counter() - t0)
        with lock:
            latencies.extend(mine)

    threads = [
        threading.Thread(target=run, args=(i,), daemon=True) for i in range(drivers)
    ]
    for t in threads:
        t.start()
    barrier.wait(timeout=60.0)
    t0 = time.perf_counter()
    for t in threads:
        t.join(timeout=300.0)
    elapsed = time.perf_counter() - t0
    assert not any(t.is_alive() for t in threads), "driver thread hung"
    latencies.sort()
    return {
        "drivers": drivers,
        "queries": len(latencies),
        "p50_ms": _percentile(latencies, 0.50) * 1e3,
        "p99_ms": _percentile(latencies, 0.99) * 1e3,
        "throughput": len(latencies) / elapsed if elapsed > 0 else 0.0,
    }


# --------------------------------------------------------------------------
# scenario 1 (the gate): fan-out layer, pooled vs per-query pool
# --------------------------------------------------------------------------


def _member_call() -> list:
    """A fast member store answering from memory: build and pack a small
    result set — the regime where per-request churn dominates."""
    return [r.pack() for r in _rows(4, 0.0)]


def _curve_line(drivers: int, label: str, point: dict) -> str:
    return (
        f"{drivers:>8} | {label:>12} | {point['p50_ms']:>8.2f} | "
        f"{point['p99_ms']:>9.2f} | {point['throughput']:>7.0f}"
    )


def test_pooled_fanout_beats_per_query_pool_at_scale():
    def legacy_query(driver: int, q: int) -> None:
        # the legacy FederationEngine branch: one pool per query, sized
        # to the fan-out, created and joined inside the request
        with ThreadPoolExecutor(max_workers=FANOUT) as pool:
            wait([pool.submit(_member_call) for _ in range(FANOUT)])

    def pooled_arm(fair: bool):
        sched = FanoutScheduler(max_workers=POOL_WORKERS, fair=fair, name="bench")
        wait([sched.submit(_member_call, tenant="warm") for _ in range(FANOUT)])

        def query(driver: int, q: int) -> None:
            futures = [
                sched.submit(_member_call, tenant=f"client-{driver}")
                for _ in range(FANOUT)
            ]
            for future in futures:
                future.result(timeout=120.0)

        return sched, query

    curves: dict[str, list[dict]] = {"legacy": [], "pooled": [], "pooled+fair": []}
    schedulers: dict[str, FanoutScheduler] = {}
    try:
        arms = {"pooled": pooled_arm(fair=False), "pooled+fair": pooled_arm(fair=True)}
        schedulers = {label: sched for label, (sched, _) in arms.items()}
        for drivers in GATE_DRIVER_SWEEP:
            curves["legacy"].append(
                _drive_threads(legacy_query, drivers, GATE_QUERIES_PER_DRIVER)
            )
            for label, (_, query) in arms.items():
                curves[label].append(
                    _drive_threads(query, drivers, GATE_QUERIES_PER_DRIVER)
                )

        lines = [
            f"Fan-out latency vs concurrent drivers ({FANOUT}-wide fan-out, "
            f"{GATE_QUERIES_PER_DRIVER} queries per driver)",
            f"{'drivers':>8} | {'arm':>12} | {'p50 ms':>8} | {'p99 ms':>9} | {'req/s':>7}",
        ]
        for i, drivers in enumerate(GATE_DRIVER_SWEEP):
            for label in curves:
                lines.append(_curve_line(drivers, label, curves[label][i]))

        # the gate: at the top of the sweep, warm pooled workers must
        # answer with at least a 2x better median than per-query thread
        # create/join churn
        legacy_p50 = curves["legacy"][-1]["p50_ms"]
        for label in ("pooled", "pooled+fair"):
            pooled_p50 = curves[label][-1]["p50_ms"]
            assert legacy_p50 >= 2.0 * pooled_p50, (
                f"{label} p50 {pooled_p50:.2f} ms vs legacy {legacy_p50:.2f} ms "
                f"at {GATE_DRIVER_SWEEP[-1]} drivers"
            )
        # the pooled arms really pooled: one engine-lifetime worker set
        for label, sched in schedulers.items():
            stats = sched.stats()
            assert stats["workersCreated"] <= POOL_WORKERS, label
            expected = sum(GATE_DRIVER_SWEEP) * GATE_QUERIES_PER_DRIVER * FANOUT
            assert stats["completed"] >= expected, label

        write_result("concurrency_scale_curve.txt", "\n".join(lines))
        write_json(
            "concurrency_scale",
            {
                "fanout": FANOUT,
                "driver_sweep": list(GATE_DRIVER_SWEEP),
                "queries_per_driver": GATE_QUERIES_PER_DRIVER,
                "pool_workers": POOL_WORKERS,
                "curves": curves,
                "gate": {
                    "legacy_p50_ms": legacy_p50,
                    "pooled_p50_ms": curves["pooled"][-1]["p50_ms"],
                    "pooled_fair_p50_ms": curves["pooled+fair"][-1]["p50_ms"],
                    "required_speedup": 2.0,
                },
                "quick": QUICK,
            },
        )
    finally:
        for sched in schedulers.values():
            sched.shutdown()


# --------------------------------------------------------------------------
# scenario 2 (informational): the same arms behind the full engine stack
# --------------------------------------------------------------------------


def _build_federation():
    wrappers = {
        f"M{i:03d}": InMemoryWrapper(
            f"M{i:03d}",
            [InMemoryExecution("0", {"numprocs": str(2 + i % 4)}, _rows(4, float(i)))],
        )
        for i in range(MEMBERS)
    }
    grid = build_synthetic_grid(wrappers)
    grid.deploy_federation(cost_based=False)
    return grid, sorted(wrappers)


def _make_engine(grid, use_shared_pool: bool, fair: bool) -> FederationEngine:
    """One engine per arm, driven directly (the federated SOAP endpoint
    serializes on its per-service gate, which would measure the gate,
    not the fan-out; member calls still cross the Services Layer)."""
    client = PPerfGridClient(grid.environment, grid.uddi_gsh)
    scheduler = (
        FanoutScheduler(max_workers=POOL_WORKERS, fair=fair, name="bench")
        if use_shared_pool
        else None
    )
    engine = FederationEngine(
        client,
        managers={name: site.manager for name, site in grid.sites.items()},
        cost_based=False,
        scheduler=scheduler,
        use_shared_pool=use_shared_pool,
    )
    engine.max_workers = POOL_WORKERS
    engine.execute("SELECT m")  # warm discovery + member bindings
    return engine


def test_end_to_end_engine_scale_curve():
    grid, members = _build_federation()
    arms = {
        "legacy": (False, True),
        "pooled": (True, False),
        "pooled+fair": (True, True),
    }
    curves: dict[str, list[dict]] = {}
    engines = {}
    try:
        for label, (use_pool, fair) in arms.items():
            engine = engines[label] = _make_engine(grid, use_pool, fair)

            def query(driver: int, q: int, eng=engine) -> None:
                app = members[(driver + q) % len(members)]
                n = next(_unique)
                text = f"SELECT m WHERE app = '{app}' AND value >= -{n}.5"
                result = eng.execute(text, tenant=f"client-{driver}-{q}")
                assert not result.cached  # unique text: the fan-out ran

            curves[label] = [
                _drive_threads(query, d, E2E_QUERIES_PER_DRIVER)
                for d in E2E_DRIVER_SWEEP
            ]

        lines = [
            f"End-to-end query latency vs concurrent drivers ({MEMBERS} members, "
            f"{E2E_QUERIES_PER_DRIVER} unique single-member queries per driver)",
            f"{'drivers':>8} | {'arm':>12} | {'p50 ms':>8} | {'p99 ms':>9} | {'req/s':>7}",
        ]
        for i, drivers in enumerate(E2E_DRIVER_SWEEP):
            for label in arms:
                lines.append(_curve_line(drivers, label, curves[label][i]))

        # invariants, not a latency gate (engine CPU dominates on small
        # hosts): every query really fanned out, and the pooled arms
        # kept one engine-lifetime worker set with no per-query growth
        for label in ("pooled", "pooled+fair"):
            stats = engines[label].scheduler_stats()
            assert stats["enabled"] == 1
            assert stats["workersCreated"] <= POOL_WORKERS, label
            assert stats["submitted"] >= sum(
                d * E2E_QUERIES_PER_DRIVER for d in E2E_DRIVER_SWEEP
            )
        assert engines["legacy"].scheduler_stats()["enabled"] == 0

        write_result("concurrency_scale_e2e.txt", "\n".join(lines))
        write_json(
            "concurrency_scale_e2e",
            {
                "members": MEMBERS,
                "driver_sweep": list(E2E_DRIVER_SWEEP),
                "queries_per_driver": E2E_QUERIES_PER_DRIVER,
                "curves": curves,
                "quick": QUICK,
            },
        )
    finally:
        for engine in engines.values():
            engine.close()


# --------------------------------------------------------------------------
# scenario 3: per-tenant fairness under a flooding tenant
# --------------------------------------------------------------------------


def _minority_latency(fair: bool) -> tuple[float, float]:
    """(uncontended p99 ms, contended p99 ms) for the minority tenant."""
    sched = FanoutScheduler(max_workers=FAIR_WORKERS, fair=fair, name="fairness")
    work = lambda: time.sleep(TASK_S)  # noqa: E731 - tiny modeled member call
    try:
        baseline: list[float] = []
        for _ in range(MINORITY_PROBES):
            t0 = time.perf_counter()
            sched.submit(work, tenant="minority").result(timeout=60.0)
            baseline.append(time.perf_counter() - t0)

        stop = threading.Event()

        def flood() -> None:
            while not stop.is_set():
                futures = [
                    sched.submit(work, tenant="flood") for _ in range(FLOOD_DEPTH)
                ]
                for future in futures:
                    future.result(timeout=120.0)

        flooder = threading.Thread(target=flood, daemon=True)
        flooder.start()
        time.sleep(0.1)  # let the flood backlog build
        contended: list[float] = []
        for _ in range(MINORITY_PROBES):
            t0 = time.perf_counter()
            sched.submit(work, tenant="minority").result(timeout=120.0)
            contended.append(time.perf_counter() - t0)
        stop.set()
        flooder.join(timeout=60.0)
        baseline.sort()
        contended.sort()
        return (
            _percentile(baseline, 0.99) * 1e3,
            _percentile(contended, 0.99) * 1e3,
        )
    finally:
        sched.shutdown()


def test_fair_queueing_bounds_minority_tenant_p99():
    fair_base, fair_contended = _minority_latency(fair=True)
    fifo_base, fifo_contended = _minority_latency(fair=False)
    fair_ratio = fair_contended / fair_base
    fifo_ratio = fifo_contended / fifo_base

    lines = [
        f"Minority-tenant p99 under a {FLOOD_DEPTH}-deep flooding tenant "
        f"({FAIR_WORKERS} workers, {TASK_S * 1e3:.0f} ms tasks)",
        f"{'arm':>12} | {'uncontended p99 ms':>19} | {'contended p99 ms':>17} | {'ratio':>7}",
        f"{'fair':>12} | {fair_base:>19.2f} | {fair_contended:>17.2f} | {fair_ratio:>6.1f}x",
        f"{'fifo':>12} | {fifo_base:>19.2f} | {fifo_contended:>17.2f} | {fifo_ratio:>6.1f}x",
    ]

    # fairness on: round-robin admits the minority every rotation — its
    # contended p99 stays within 3x of uncontended, or (when the
    # uncontended baseline is small enough to make the ratio noisy)
    # within a few rotations' worth of absolute wait
    fair_bound_ms = max(3.0 * fair_base, 6 * TASK_S * 1e3)
    assert fair_contended <= fair_bound_ms, (
        f"fair minority p99 {fair_contended:.1f} ms "
        f"(ratio {fair_ratio:.1f}x, bound {fair_bound_ms:.1f} ms)"
    )
    # fairness off: the minority convoys behind the whole flood backlog
    assert fifo_ratio > 3.0, f"fifo minority p99 ratio {fifo_ratio:.1f}x"
    # and the starvation is backlog-shaped, not a scheduling hiccup: the
    # FIFO wait covers a meaningful slice of the queued flood work
    assert fifo_contended >= FLOOD_DEPTH * TASK_S * 1e3 / FAIR_WORKERS * 0.25

    write_result("concurrency_fairness.txt", "\n".join(lines))
    write_json(
        "concurrency_fairness",
        {
            "flood_depth": FLOOD_DEPTH,
            "task_ms": TASK_S * 1e3,
            "workers": FAIR_WORKERS,
            "fair": {"uncontended_p99_ms": fair_base, "contended_p99_ms": fair_contended, "ratio": fair_ratio},
            "fifo": {"uncontended_p99_ms": fifo_base, "contended_p99_ms": fifo_contended, "ratio": fifo_ratio},
            "quick": QUICK,
        },
    )
