"""Columnar batch wire format: round-trip property suite and fuzz wall.

Two halves, matching the ISSUE's test satellites:

* round-trip: every row set — structured, ragged, unicode, NaN/inf,
  all-null, dictionary-overflowing — must decode byte-identical, both
  through ``encode_batch``/``decode_batch`` directly and through the
  tagged chunk envelope;
* adversarial: truncated batches, corrupted length headers, wrong
  format versions, and seeded random mutations must raise
  :class:`ChunkError` — never crash with another exception, and never
  silently drop or invent rows.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.soap.chunks import (
    ENCODING_COLBATCH,
    ENCODING_XML,
    ChunkError,
    decode_chunk,
    encode_chunk,
)
from repro.soap.colbatch import (
    BATCH_MAGIC,
    COLBATCH_VERSION,
    DICT_MAX,
    decode_batch,
    encode_batch,
)


def roundtrip(rows: list[str]) -> list[str]:
    return decode_batch(encode_batch(rows))


class TestRoundTripStructured:
    def test_empty_batch(self):
        records = encode_batch([])
        assert records == [f"{BATCH_MAGIC}|{COLBATCH_VERSION}|0|0|0"]
        assert decode_batch(records) == []

    def test_single_empty_row(self):
        assert roundtrip([""]) == [""]

    def test_all_null_columns(self):
        rows = ["||", "||", "||"]
        assert roundtrip(rows) == rows

    def test_null_bitmap_mixed(self):
        rows = ["a|", "|b", "a|", "|b", "|"]
        assert roundtrip(rows) == rows

    def test_constant_column_encoding(self):
        rows = [f"time_spent|{i}" for i in range(50)]
        records = encode_batch(rows)
        assert records[1].startswith("const|")
        assert decode_batch(records) == rows

    def test_dictionary_column_encoding(self):
        rows = [f"/Code/MPI/MPI_{op}" for op in ("Send", "Recv", "Wait")] * 40
        records = encode_batch(rows)
        assert records[1].startswith("dict|")
        assert decode_batch(records) == rows

    def test_fixed_point_delta_encoding(self):
        rows = [f"{i * 0.001:.9f}" for i in range(200)]
        records = encode_batch(rows)
        assert records[1].startswith("fxp|")
        assert decode_batch(records) == rows

    def test_float_repr_column_with_nan_inf(self):
        values = [repr(i / 7.0) for i in range(80)] + ["nan", "inf", "-inf"]
        rows = [f"{v}|{v}" for v in values]
        assert roundtrip(rows) == rows

    def test_dictionary_overflow_falls_back(self):
        rows = [f"token-{i}" for i in range(DICT_MAX + 10)]
        records = encode_batch(rows)
        assert not records[1].startswith("dict|")
        assert decode_batch(records) == rows

    def test_unicode_and_embedded_delimiters(self):
        rows = [
            "métrique|/Code/δ/%7C|t;ype|1.0-2.0|0.5",
            "a%3Bb|;;|%|%%25|…",
            "naïve|data|with|pipes|везде",
        ]
        assert roundtrip(rows) == rows

    def test_ragged_rows_ride_as_exceptions(self):
        rows = ["a|b|c", "a|b|c|d", "x", "e|f|g"]
        records = encode_batch(rows)
        assert records[0].endswith("|2")  # two exception rows
        assert decode_batch(records) == rows

    def test_non_canonical_numbers_stay_exact(self):
        # leading zeros, negative zero, trailing-dot forms must not be
        # "normalized" by the numeric fast paths
        rows = ["00.5|x", "-0.000|x", "1.|x", "0x10|x", "+5|x"]
        assert roundtrip(rows) == rows


class TestChunkEnvelopeTagged:
    def test_xml_chunk_bytes_unchanged(self):
        # the legacy four-field header is byte-identical: a peer that
        # never negotiates sees exactly the pre-colbatch wire
        rows = ["a|b", "c|d"]
        assert encode_chunk(3, rows, done=False) == ["#chunk|3|2|0", *rows]
        assert encode_chunk(3, rows, done=False, encoding=ENCODING_XML) == [
            "#chunk|3|2|0",
            *rows,
        ]

    def test_colbatch_chunk_roundtrip(self):
        rows = [f"m|/f/{i % 3}|{i * 0.5:.9f}" for i in range(100)]
        payload = encode_chunk(7, rows, done=True, encoding=ENCODING_COLBATCH)
        assert payload[0] == f"#chunk|7|100|1|{ENCODING_COLBATCH}"
        envelope = decode_chunk(payload)
        assert envelope.seq == 7 and envelope.done is True
        assert envelope.encoding == ENCODING_COLBATCH
        assert list(envelope.rows) == rows

    def test_explicit_xml_tag_decodes(self):
        payload = [f"#chunk|0|1|1|{ENCODING_XML}", "row"]
        envelope = decode_chunk(payload)
        assert envelope.rows == ("row",) and envelope.encoding == ENCODING_XML

    def test_unknown_encoding_rejected_on_both_ends(self):
        with pytest.raises(ChunkError, match="unknown chunk encoding"):
            encode_chunk(0, ["r"], done=True, encoding="protobuf")
        with pytest.raises(ChunkError, match="unknown encoding"):
            decode_chunk(["#chunk|0|1|1|protobuf", "r"])

    def test_colbatch_count_mismatch_rejected(self):
        payload = encode_chunk(0, ["a|b", "c|d"], done=True, encoding=ENCODING_COLBATCH)
        header = payload[0].replace("|2|", "|3|")
        with pytest.raises(ChunkError, match="declares 3 row"):
            decode_chunk([header, *payload[1:]])


_wild_text = st.text(min_size=0, max_size=40)


class TestRoundTripProperties:
    @given(st.lists(_wild_text, max_size=30))
    @settings(max_examples=120, deadline=None)
    def test_any_rows_roundtrip(self, rows):
        assert roundtrip(rows) == rows

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["time_spent", "bytes_sent", "μops"]),
                st.integers(0, 5),
                st.floats(allow_nan=True, allow_infinity=True),
                _wild_text,
            ),
            max_size=25,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_typed_rows_roundtrip(self, specs):
        rows = [
            f"{metric}|/f/{focus}|{value!r}|{text}" for metric, focus, value, text in specs
        ]
        assert roundtrip(rows) == rows

    @given(st.lists(_wild_text, max_size=12), st.integers(0, 10**6), st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_chunk_envelope_roundtrip(self, rows, seq, done):
        envelope = decode_chunk(encode_chunk(seq, rows, done, ENCODING_COLBATCH))
        assert list(envelope.rows) == rows
        assert (envelope.seq, envelope.done) == (seq, done)


def _random_token(rng: random.Random) -> str:
    kind = rng.randrange(9)
    if kind == 0:
        return ""
    if kind == 1:
        return f"{rng.uniform(-1000, 1000):.9f}"
    if kind == 2:
        return repr(rng.uniform(-1e9, 1e9))
    if kind == 3:
        return rng.choice(["nan", "inf", "-inf", "0.0", "-0.0"])
    if kind == 4:
        return str(rng.randrange(-(10**12), 10**12))
    if kind == 5:
        return rng.choice(["/Code/MPI/MPI_Send", "time_spent", "vampir"])
    if kind == 6:
        return "".join(chr(rng.randrange(32, 0x2500)) for _ in range(rng.randrange(12)))
    if kind == 7:
        return rng.choice(["%", ";", "|", "a%3Bb", "%25", "-0.000", "00.7"])
    return rng.choice([BATCH_MAGIC, "@xrows", "#chunk", "const", "fxp|x"])


def _random_rows(rng: random.Random) -> list[str]:
    n = rng.randrange(0, 50)
    if rng.random() < 0.5:
        nfields = rng.randrange(1, 8)
        rows = [
            "|".join(_random_token(rng) for _ in range(nfields)) for _ in range(n)
        ]
        for _ in range(rng.randrange(3)):  # ragged injections
            if rows:
                rows[rng.randrange(len(rows))] = _random_token(rng)
        return rows
    return [_random_token(rng) for _ in range(n)]


class TestSeededOracle:
    """Randomized corpus seeded through the --seed/oracle_seed plumbing."""

    N_CASES = 150

    @pytest.mark.parametrize("case", range(N_CASES))
    def test_random_rows_roundtrip(self, case, oracle_seed):
        rng = random.Random(0xC0B + oracle_seed * 1_000_003 + case)
        rows = _random_rows(rng)
        assert roundtrip(rows) == rows


class TestAdversarialDecode:
    @pytest.fixture()
    def valid(self):
        rows = [
            f"time_spent|/f/{i % 5}|vampir|{i * 0.25:.9f}|{repr(i * 0.5)}"
            for i in range(60)
        ]
        rows[17] = "ragged|row"
        return encode_batch(rows)

    def test_empty_payload_rejected(self):
        with pytest.raises(ChunkError, match="missing batch header"):
            decode_batch([])

    def test_wrong_format_version_rejected(self, valid):
        header = valid[0].replace(
            f"|{COLBATCH_VERSION}|", f"|{COLBATCH_VERSION + 1}|", 1
        )
        with pytest.raises(ChunkError, match="version"):
            decode_batch([header, *valid[1:]])

    @pytest.mark.parametrize("drop", range(1, 7))
    def test_truncated_batch_rejected(self, valid, drop):
        with pytest.raises(ChunkError):
            decode_batch(valid[:-drop])

    def test_extra_record_rejected(self, valid):
        with pytest.raises(ChunkError, match="record"):
            decode_batch(valid + ["raw|-|x"])

    def test_corrupted_row_count_rejected(self, valid):
        parts = valid[0].split("|")
        parts[2] = str(int(parts[2]) + 1)
        with pytest.raises(ChunkError):
            decode_batch(["|".join(parts), *valid[1:]])

    def test_garbage_header_counts_rejected(self, valid):
        with pytest.raises(ChunkError):
            decode_batch([f"{BATCH_MAGIC}|1|ten|5|0", *valid[1:]])
        with pytest.raises(ChunkError):
            decode_batch([f"{BATCH_MAGIC}|1|-4|5|0", *valid[1:]])
        with pytest.raises(ChunkError):
            decode_batch([f"{BATCH_MAGIC}|1|3|5|9", *valid[1:]])

    def test_unknown_column_encoding_rejected(self):
        records = encode_batch(["a|b", "c|d"])
        bad = "zstd" + records[1][records[1].index("|") :]
        with pytest.raises(ChunkError, match="unknown column encoding"):
            decode_batch([records[0], bad, records[2]])

    def test_dict_index_out_of_range_rejected(self):
        records = encode_batch(["x", "y"] * 10)
        assert records[1].startswith("dict|")
        head, _, indexes = records[1].rpartition("|")
        with pytest.raises(ChunkError):
            decode_batch([records[0], head + "|" + "z" * len(indexes)])

    def test_fxp_run_length_bomb_rejected(self):
        # a forged run count must not allocate unbounded memory
        records = encode_batch([f"{i}.5" for i in range(10)])
        assert records[1].startswith("fxp|")
        forged = records[1].rsplit("|", 1)[0] + "|10*999999999"
        with pytest.raises(ChunkError, match="overflow"):
            decode_batch([records[0], forged])

    def test_bad_null_bitmap_rejected(self):
        records = encode_batch(["a|", "b|", "c|"])
        column = records[2].split("|")
        column[1] = column[1] + "A"  # wrong bitmap length
        with pytest.raises(ChunkError, match="bitmap"):
            decode_batch([records[0], records[1], "|".join(column)])

    def test_mixed_encoding_sequence_rejected(self):
        # chunk 0 negotiated colbatch, chunk 1 arrives as XML rows: the
        # decode level flags the switch via the envelope encoding, and a
        # colbatch-tagged chunk with per-row payload is malformed
        xml_rows_in_colbatch = [f"#chunk|1|2|0|{ENCODING_COLBATCH}", "a|b", "c|d"]
        with pytest.raises(ChunkError):
            decode_chunk(xml_rows_in_colbatch)

    def test_seeded_mutation_fuzz_never_crashes(self, oracle_seed):
        """Random single-point mutations: ChunkError or a full decode —
        no other exception, no row-count drift from the header."""
        rng = random.Random(0xF022 + oracle_seed)
        base = encode_batch(
            [
                f"time_spent|/f/{i % 7}|vampir|{i * 0.125:.9f}|{repr((i * 13 % 50) / 8)}"
                for i in range(80)
            ]
        )
        for _ in range(2000):
            records = list(base)
            action = rng.randrange(4)
            if action == 0 and len(records) > 1:
                del records[rng.randrange(len(records))]
            elif action == 1:
                i = rng.randrange(len(records))
                if records[i]:
                    j = rng.randrange(len(records[i]))
                    records[i] = (
                        records[i][:j]
                        + chr(rng.randrange(32, 127))
                        + records[i][j + 1 :]
                    )
            elif action == 2:
                i = rng.randrange(len(records))
                records[i] += chr(rng.randrange(32, 127))
            else:
                records.insert(rng.randrange(len(records) + 1), "junk|record")
            try:
                rows = decode_batch(records)
            except ChunkError:
                continue
            header = records[0].split("|")
            assert header[0] == BATCH_MAGIC
            assert len(rows) == int(header[2])
