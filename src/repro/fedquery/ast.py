"""Federated-query AST (``repro.fedquery``).

One :class:`Query` describes a declarative question over the whole
federation of published Applications:

.. code-block:: text

    SELECT mean(msg_deliv_time), count(msg_deliv_time)
    FROM SMG98
    WHERE numprocs >= 32 AND focus = '/Messages'
    GROUP BY numprocs

The planner decides *how* to answer it — which predicates push down to
the stores, which executions need to be touched, and what can be
aggregated before it crosses the wire.  See :mod:`repro.fedquery.parser`
for the concrete grammar.

Field vocabulary (predicates and group keys):

* ``app`` — the published Application name;
* ``exec`` — the unique execution id;
* ``focus`` / ``type`` / ``value`` / ``start`` / ``end`` — Performance
  Result coordinates (``focus`` predicates select the *query foci*
  passed to ``getPR``, matching thesis semantics);
* anything else — an execution attribute (``numprocs``, ``rundate``, …)
  as published by ``getExecQueryParams``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: aggregate functions of the query language
AGG_FUNCS = ("count", "sum", "mean", "min", "max")

#: fields with built-in meaning; all other fields are execution attributes
RESERVED_FIELDS = ("app", "exec", "focus", "type", "value", "start", "end")

#: comparison operators ("in" is spelled ``field IN (a, b, ...)``)
COMPARISONS = ("=", "!=", "<", "<=", ">", ">=", "in")

#: operators each reserved field accepts (attributes/exec accept all six)
_FIELD_OPS = {
    "app": ("=", "!=", "in"),
    "focus": ("=", "in"),
    "type": ("=",),
    "start": (">=",),
    "end": ("<=",),
    "value": ("=", "!=", "<", "<=", ">", ">="),
}

#: fields whose literals must be numeric
_NUMERIC_FIELDS = ("value", "start", "end")


class QueryError(ValueError):
    """Raised for malformed query text or semantically invalid queries."""


@dataclass(frozen=True)
class SelectItem:
    """One output column: a raw metric or an aggregate over it."""

    metric: str
    func: str | None = None  # None = raw projection

    @property
    def label(self) -> str:
        return self.metric if self.func is None else f"{self.func}({self.metric})"


@dataclass(frozen=True)
class Predicate:
    """One conjunct of the WHERE clause.

    ``value`` is the literal's source text (a tuple of texts for IN);
    stores interpret it with their own typing rules, exactly as the
    Table 1 ``getExecs`` operations do.
    """

    field: str
    op: str
    value: str | tuple[str, ...]

    def values(self) -> tuple[str, ...]:
        return self.value if isinstance(self.value, tuple) else (self.value,)

    def canonical(self) -> str:
        rendered = ",".join(sorted(self.values())) if self.op == "in" else self.value
        return f"{self.field} {self.op} {rendered}"


@dataclass(frozen=True)
class Query:
    """A validated federated query."""

    select: tuple[SelectItem, ...]
    sources: tuple[str, ...] = ()  # empty = every published Application
    where: tuple[Predicate, ...] = ()
    group_by: tuple[str, ...] = ()
    order_by: str | None = None
    order_desc: bool = False
    limit: int | None = None

    # --------------------------------------------------------- inspection
    @property
    def aggregates(self) -> tuple[SelectItem, ...]:
        return tuple(item for item in self.select if item.func is not None)

    @property
    def is_aggregate(self) -> bool:
        return bool(self.aggregates)

    @property
    def metrics(self) -> tuple[str, ...]:
        seen: list[str] = []
        for item in self.select:
            if item.metric not in seen:
                seen.append(item.metric)
        return tuple(seen)

    @property
    def output_columns(self) -> tuple[str, ...]:
        if self.is_aggregate:
            return self.group_by + tuple(item.label for item in self.select)
        return ("app", "exec", "metric", "focus", "type", "start", "end", "value")

    def predicates_on(self, field_name: str) -> tuple[Predicate, ...]:
        return tuple(p for p in self.where if p.field == field_name)

    def attribute_predicates(self) -> tuple[Predicate, ...]:
        """Predicates on execution attributes (non-reserved fields)."""
        return tuple(p for p in self.where if p.field not in RESERVED_FIELDS)

    def group_attributes(self) -> tuple[str, ...]:
        """Group keys that are execution attributes."""
        return tuple(k for k in self.group_by if k not in ("app", "exec", "focus"))

    # --------------------------------------------------------- validation
    def validate(self) -> "Query":
        if not self.select:
            raise QueryError("SELECT list is empty")
        labels = [item.label for item in self.select]
        if len(set(labels)) != len(labels):
            raise QueryError(f"duplicate select item in {labels}")
        raw = [i for i in self.select if i.func is None]
        if raw and self.aggregates:
            raise QueryError("cannot mix raw metrics and aggregates in SELECT")
        for item in self.aggregates:
            if item.func not in AGG_FUNCS:
                raise QueryError(f"unknown aggregate function {item.func!r}")
        if self.group_by and not self.is_aggregate:
            raise QueryError("GROUP BY requires aggregate select items")
        if len(set(self.group_by)) != len(self.group_by):
            raise QueryError(f"duplicate GROUP BY key in {self.group_by}")
        for key in self.group_by:
            if key in ("value", "start", "end", "type"):
                raise QueryError(f"cannot GROUP BY {key!r}")
        for pred in self.where:
            allowed = _FIELD_OPS.get(pred.field)
            if allowed is not None and pred.op not in allowed:
                raise QueryError(
                    f"field {pred.field!r} does not support operator {pred.op!r} "
                    f"(allowed: {', '.join(allowed)})"
                )
            if pred.op not in COMPARISONS:
                raise QueryError(f"unknown operator {pred.op!r}")
            if pred.field in _NUMERIC_FIELDS:
                for text in pred.values():
                    try:
                        float(text)
                    except ValueError as exc:
                        raise QueryError(
                            f"field {pred.field!r} needs a numeric literal, got {text!r}"
                        ) from exc
        if len(self.predicates_on("type")) > 1:
            raise QueryError("at most one type predicate is supported")
        if self.order_by is not None and self.order_by not in self.output_columns:
            raise QueryError(
                f"ORDER BY {self.order_by!r} is not an output column "
                f"(columns: {', '.join(self.output_columns)})"
            )
        if self.limit is not None and self.limit < 0:
            raise QueryError(f"LIMIT must be non-negative, got {self.limit}")
        return self

    # -------------------------------------------------------- fingerprint
    def fingerprint(self) -> str:
        """Canonical identity for plan-level result caching.

        Conjunct order and FROM order are normalized away (AND and
        source federation are commutative); SELECT and GROUP BY order
        are preserved (they shape the output).
        """
        parts = [
            "select=" + ",".join(item.label for item in self.select),
            "from=" + (",".join(sorted(self.sources)) if self.sources else "*"),
            "where=" + "&".join(sorted(p.canonical() for p in self.where)),
            "group=" + ",".join(self.group_by),
            "order=" + (self.order_by or "") + (":desc" if self.order_desc else ""),
            "limit=" + ("" if self.limit is None else str(self.limit)),
        ]
        return ";".join(parts)
