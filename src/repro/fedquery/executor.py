"""Federated query execution: discovery, fan-out, merge, plan cache.

:class:`FederationEngine` is the run-time half of the planner:

1. **Catalog** — members are discovered once through the UDDI registry
   (every published Application) and bound lazily; their query-param
   vocabularies feed the planner.
2. **Fan-out** — each selected execution becomes one task; tasks run on
   a thread pool whose width follows the Managers' replica topology.
   Container dispatch serializes *per service* (not per container), so
   several tasks per replica container make real progress at once;
   ``fanout_slots_per_replica`` sizes the pool accordingly.  The merge
   itself happens on the calling thread as futures complete.  Per-task
   failures degrade the result (surviving members' rows are returned,
   the failures are counted) instead of aborting the whole query.
3. **Plan cache** — whole query results are memoized on the query's
   canonical fingerprint (an LRU of packed rows), so repeated dashboards
   cost one cache probe instead of a federation sweep.
4. **Cache coherence** — every cached fingerprint records the
   ``(app, exec_id)`` set it read.  :meth:`FederationEngine.enable_coherence`
   deploys a NotificationSink next to the engine and subscribes it to
   each member Execution's ``data-update`` topic; a delivery drops only
   the plans whose dependency set includes the updated execution.  A
   per-member generation counter closes the insert-after-invalidate
   race: results computed against a superseded generation are discarded
   instead of being cached.
5. **Cost-based planning** — member statistics (``getStats``) are
   fetched once per member and cached; the planner uses them to pick
   raw/aggregate/skip per member (see :mod:`repro.fedquery.cost`).
   Coherence extends to the stats: a data-update drops the member's
   cached stats exactly as it drops dependent plans, and a plan that
   *skipped* a member on a stats proof records a wildcard dependency
   ``(app, "*")`` on it — the skip is re-evaluated after any update to
   that member, even though the plan read none of its executions.
   Failed stats fetches degrade gracefully (the member keeps the global
   mode, is never skipped, and the degraded result is not memoized).
   A data-update normally refreshes only the *updated execution's*
   contribution to the member's cached stats (a per-execution baseline
   is kept and re-merged) instead of refetching the whole member; any
   trouble falls back to the whole-member drop.
6. **Streaming execution** — ``execute(query, stream=True)`` returns a
   :class:`~repro.fedquery.stream.StreamedResult` instead of a
   materialized row list.  Raw queries without ORDER BY take the true
   streaming path: each member execution's rows arrive pre-sorted
   (server-side ``ordered`` cursors, or a client-side sort for provably
   small members where bulk ``getPR`` is cheaper) and a k-way heap
   merge yields them in exactly the bulk path's canonical order, with
   at most ``stream_chunk_depth`` chunks in flight per member.
   Aggregates and ORDER BY need every row before the first output row,
   so they run the bulk pipeline internally and stream its finished
   rows.  Fully drained streams memoize like bulk results (up to
   ``stream_memoize_max_bytes``); partial drains and degraded runs
   never do.
"""

from __future__ import annotations

import threading
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from dataclasses import dataclass, field

from repro.core.prcache import ByteBudgetLruCache, PrCache
from repro.core.semantic import AggregateRecord, StoreStats, ordering_key, pr_sort_key
from repro.fedquery.ast import Query, QueryError
from repro.fedquery.merge import (
    RAW_COLUMNS,
    BoundsTracker,
    ResultRow,
    StreamingMerger,
    TaskContext,
    order_rows,
    pack_bounds,
    split_bounds,
)
from repro.fedquery.parser import parse_query
from repro.fedquery.planner import MemberPlan, Plan, plan_query
from repro.fedquery.pushdown import filter_foci, matches_value
from repro.fedquery.scheduler import DEFAULT_TENANT, FanoutScheduler
from repro.fedquery.stream import (
    DEFAULT_CHUNK_DEPTH,
    DEFAULT_CHUNK_ROWS,
    DEFAULT_MEMOIZE_MAX_BYTES,
    DEFAULT_STREAM_THRESHOLD_ROWS,
    MemberStream,
    StreamedResult,
    merge_streams,
)
from repro.xmlkit import parse as parse_xml

#: fan-out defaults: *default* when no Manager topology is known, *cap*
#: so a large federation cannot spawn an unbounded thread pool
DEFAULT_FANOUT = 8
FANOUT_CAP = 32

#: default byte budget for the plan cache — streamed queries can memoize
#: large row sets, so the default cache is bounded by bytes, not entries
DEFAULT_PLAN_CACHE_BYTES = 4 * 1024 * 1024
DEFAULT_PLAN_CACHE_ENTRIES = 256


def choose_fanout(
    manager_stats: list[dict[str, object]],
    default: int = DEFAULT_FANOUT,
    cap: int = FANOUT_CAP,
    slots_per_replica: int = 2,
) -> int:
    """Pool width from the Managers' replica topology.

    Historically two slots per replica container: with whole-container
    dispatch serialization, a second thread only kept the container's
    lock warm.  The dispatch core now serializes per *service*, so each
    replica container can make progress on several execution instances
    at once — the engine passes a larger ``slots_per_replica`` (see
    ``FederationEngine.fanout_slots_per_replica``); the default stays 2
    for callers sizing against legacy serialized containers.
    """
    replicas = sum(int(stats.get("replicas", 0)) for stats in manager_stats)
    if replicas <= 0:
        return default
    return max(2, min(cap, slots_per_replica * replicas))


def _sde_values(xml: str) -> list[str]:
    """Extract ``<value>`` texts from a FindServiceData result document."""
    root = parse_xml(xml).root
    return [el.text() for el in root.iter_all() if el.tag.local == "value"]


@dataclass
class QueryResult:
    """One answered federated query.

    ``errors`` carries one message per failed member task (degraded
    result); such results are never memoized in the plan cache.

    ``approx`` marks a bounded-estimate answer (``execute(...,
    approx=True)``); ``error_bounds`` then holds one dict per row
    mapping aggregate column label to its sound ``(lo, hi)`` interval —
    an empty dict means every cell in that row is exact.  Both default
    empty so exact-mode callers are unchanged.
    """

    rows: list[ResultRow]
    columns: tuple[str, ...]
    cached: bool
    plan: Plan | None
    stats: dict[str, int] = field(default_factory=dict)
    errors: list[str] = field(default_factory=list)
    approx: bool = False
    error_bounds: list = field(default_factory=list)


class FederationEngine:
    """Plans and executes federated queries over published Applications.

    ``client`` is a :class:`repro.core.client.PPerfGridClient` (or any
    object with ``discover_organizations``/``bind``); ``managers`` maps
    member name to its site's :class:`ManagerService` for fan-out sizing
    (optional — remote deployments fall back to the default width).
    """

    def __init__(
        self,
        client,
        managers: dict[str, object] | None = None,
        plan_cache: PrCache | None = None,
        max_workers: int | None = None,
        cost_based: bool = True,
        stream_chunk_rows: int = DEFAULT_CHUNK_ROWS,
        stream_chunk_depth: int = DEFAULT_CHUNK_DEPTH,
        stream_threshold_rows: int = DEFAULT_STREAM_THRESHOLD_ROWS,
        stream_memoize_max_bytes: int = DEFAULT_MEMOIZE_MAX_BYTES,
        stats_deltas: bool = True,
        accept_encodings: tuple[str, ...] | None = None,
        tier0: bool = True,
        scheduler: FanoutScheduler | None = None,
        use_shared_pool: bool = True,
    ) -> None:
        self.client = client
        self.managers = dict(managers or {})
        self.plan_cache = (
            plan_cache
            if plan_cache is not None
            else ByteBudgetLruCache(
                max_bytes=DEFAULT_PLAN_CACHE_BYTES,
                capacity=DEFAULT_PLAN_CACHE_ENTRIES,
            )
        )
        self.max_workers = max_workers
        #: fan-out slots per replica container: per-service dispatch
        #: lets several execution instances in one container progress
        #: concurrently, so the pool sizes wider than the legacy 2
        self.fanout_slots_per_replica = 4
        #: False reverts to the pre-cost-model global planner (the
        #: benchmark's baseline arm); no getStats calls are made
        self.cost_based = cost_based
        #: streaming knobs: rows per chunk, chunks in flight per member,
        #: bulk-vs-cursor estimated-row threshold, memoization byte cap
        self.stream_chunk_rows = stream_chunk_rows
        self.stream_chunk_depth = stream_chunk_depth
        self.stream_threshold_rows = stream_threshold_rows
        self.stream_memoize_max_bytes = stream_memoize_max_bytes
        #: wire encodings advertised when draining member cursors; None
        #: leaves the client default (PPG_ACCEPT_ENCODINGS-aware), and
        #: ``("xml",)`` pins the fan-out to per-row transfers
        self.accept_encodings = accept_encodings
        #: False reverts data-updates to whole-member stats drops instead
        #: of per-execution delta refreshes
        self.stats_deltas = stats_deltas
        #: False disables the tier-0 metadata answer path entirely (the
        #: benchmark's baseline arm); queries then always fan out
        self.tier0 = tier0
        self._bindings: dict[str, object] | None = None
        self._params: dict[str, dict[str, list[str]]] = {}
        self._metrics: dict[str, list[str]] = {}
        self._exec_ids: dict[str, str] = {}
        #: member name -> StoreStats; failed fetches are *not* cached,
        #: so the next query retries and recovers
        self._member_stats: dict[str, StoreStats] = {}
        #: member name -> {exec_id -> StoreStats}: the per-execution
        #: baseline behind delta refreshes (merged stats aren't
        #: invertible, so updates re-merge from this instead)
        self._exec_stats: dict[str, dict[str, StoreStats]] = {}
        #: member name -> exec ids whose stats are stale (data-updated
        #: since the member's stats were merged)
        self._stats_dirty: dict[str, set[str]] = {}
        #: how each executed (uncached) plan's effective mode broke down
        self.plan_modes = {"raw": 0, "aggregate": 0, "mixed": 0, "skip": 0, "tier0": 0}
        # ---- coherence state (guarded by _coherence_lock) ----
        #: fingerprint -> {(app, exec_id)} read when the entry was cached
        self._plan_deps: dict[str, frozenset[tuple[str, str]]] = {}
        #: engine-local data generation per (app, exec_id); bumped on
        #: every data-update delivery, snapshotted around each execute
        self._generations: dict[tuple[str, str], int] = {}
        #: per-app data generation, for wildcard ``(app, "*")`` deps —
        #: plans that skipped a member on a stats proof depend on the
        #: *whole* member, not on any execution they read
        self._app_generations: dict[str, int] = {}
        #: global epoch: bumped on full-cache clears so in-flight queries
        #: that started before the clear cannot re-insert stale rows
        self._epoch = 0
        #: source handle -> (app, exec_id), learned at subscription time;
        #: the precise attribution for data-update deliveries
        self._source_keys: dict[str, tuple[str, str]] = {}
        #: exec_id -> apps it belongs to — the fallback attribution when
        #: a delivery carries no (known) source handle; exec ids can
        #: collide across apps, so this may over-invalidate
        self._exec_apps: dict[str, set[str]] = {}
        #: execution GSHs already subscribed (enables re-subscription
        #: sweeps after new members publish)
        self._subscribed: set[str] = set()
        self._sink = None
        self._sink_gsh = None
        self._coherence_lock = threading.Lock()
        self.coherence = {
            "subscriptions": 0,
            "notifications": 0,
            "invalidations": 0,
            "fullClears": 0,
            "memberClears": 0,
            "staleDiscards": 0,
            "statsInvalidations": 0,
            "statsDeltas": 0,
        }
        #: lazily created ViewMaintainer (see :meth:`views`)
        self._view_maintainer = None
        #: False reverts the fan-out to a fresh per-query
        #: ThreadPoolExecutor (the concurrency benchmark's baseline arm)
        self.use_shared_pool = use_shared_pool
        #: the engine-lifetime fan-out pool; injected (the deployer owns
        #: its lifecycle) or created lazily on first pooled fan-out
        self._scheduler = scheduler
        self._owns_scheduler = scheduler is None
        self._scheduler_lock = threading.Lock()

    # -------------------------------------------------- fan-out scheduler
    def _pool(self) -> FanoutScheduler:
        """The engine-lifetime fan-out scheduler (created on first use).

        Sized once from the federation topology (``max_workers`` wins if
        set); per-query width clamping happens at submit time by simply
        queueing — the pool never grows per query.  The environment's
        reactor, when one is already running, paces the scheduler's
        control tick; a lazily created pool never *starts* a reactor.
        """
        sched = self._scheduler
        if sched is not None and not sched.is_shutdown:
            return sched
        with self._scheduler_lock:
            sched = self._scheduler
            if sched is None or sched.is_shutdown:
                if self.max_workers is not None:
                    width = self.max_workers
                else:
                    stats = [m.stats() for m in self.managers.values()]
                    width = choose_fanout(
                        stats, slots_per_replica=self.fanout_slots_per_replica
                    )
                reactor = getattr(
                    getattr(self.client, "environment", None), "_reactor", None
                )
                sched = self._scheduler = FanoutScheduler(
                    max_workers=width, reactor=reactor, name="fedpool"
                )
                self._owns_scheduler = True
        return sched

    def scheduler_stats(self) -> dict:
        """Pool/queue/tenant counters for SDE publication and stats().

        Safe before the first pooled query: reports the pool as absent
        (``enabled`` reflects ``use_shared_pool``) with zeroed counters
        rather than forcing pool creation as a side effect of monitoring.
        """
        sched = self._scheduler
        if sched is None or sched.is_shutdown:
            return {
                "enabled": int(self.use_shared_pool),
                "maxWorkers": 0,
                "workers": 0,
                "busy": 0,
                "queueDepth": 0,
                "submitted": 0,
                "completed": 0,
                "shed": 0,
                "poolUtilization": 0.0,
            }
        out = {"enabled": int(self.use_shared_pool)}
        out.update(sched.stats())
        return out

    def set_rate_limit(
        self, tenant: str | None, rate: float, burst: int | None = None
    ) -> None:
        """Token-bucket admission for *tenant* (None = the default bucket)."""
        self._pool().set_rate_limit(tenant, rate, burst=burst)

    def close(self) -> None:
        """Shut down the fan-out pool if this engine created it.

        An injected scheduler (shared by the deployer across engines)
        is left running — its owner closes it.
        """
        with self._scheduler_lock:
            sched, self._scheduler = self._scheduler, None
            owns = self._owns_scheduler
        if sched is not None and owns:
            sched.shutdown()

    # ------------------------------------------------------------ catalog
    def members(self) -> dict[str, object]:
        """name -> Application binding for every published member."""
        if self._bindings is None:
            bindings: dict[str, object] = {}
            for org in self.client.discover_organizations("%"):
                for service in org.services():
                    if service.name not in bindings:
                        bindings[service.name] = self.client.bind(service)
            self._bindings = dict(sorted(bindings.items()))
        return self._bindings

    def refresh_members(self) -> None:
        """Forget discovery results (e.g. after new members publish).

        ``_exec_ids`` must go too: a re-published member can reuse a GSH
        for a different execution, and a stale GSH -> execId mapping
        would silently mislabel (and mis-invalidate) its results.  The
        environment's pooled stubs go for the same reason: a reused GSH
        must re-bind, not be answered by a binding to the old service.
        """
        self._bindings = None
        self._params.clear()
        self._metrics.clear()
        self._exec_ids.clear()
        with self._coherence_lock:
            self._member_stats.clear()
            self._exec_stats.clear()
            self._stats_dirty.clear()
        stub_pool = getattr(
            getattr(self.client, "environment", None), "stub_pool", None
        )
        if stub_pool is not None:
            stub_pool.clear()

    def _member_params(self, name: str, binding) -> dict[str, list[str]]:
        params = self._params.get(name)
        if params is None:
            params = self._params[name] = binding.exec_query_params()
        return params

    def _member_metrics(self, name: str, probe) -> list[str]:
        metrics = self._metrics.get(name)
        if metrics is None:
            metrics = self._metrics[name] = probe.metrics()
        return metrics

    def _execution_id(self, binding) -> str:
        if binding.is_local:
            return binding.exec_id
        cached = self._exec_ids.get(binding.gsh)
        if cached is None:
            values = _sde_values(binding.find_service_data("name:execId"))
            if not values:
                raise QueryError(f"execution {binding.gsh} publishes no execId")
            cached = self._exec_ids[binding.gsh] = values[0]
        return cached

    # ------------------------------------------------------------ queries
    def explain(self, query: str | Query) -> str:
        return self._plan(self._parse(query)).explain()

    def explain_plan(self, query: str | Query) -> list[str]:
        """Cost-annotated plan lines, without executing the query.

        Extends :meth:`explain` with the cost model's federation-wide
        summary: the effective mode the stats actually selected and the
        estimated transfer volume.
        """
        plan = self._plan(self._parse(query))
        lines = plan.explain().splitlines()
        lines.append(f"effective mode: {plan.effective_mode}")
        lines.append(f"estimated transfer: {plan.estimated_bytes} bytes")
        return lines

    def execute(
        self,
        query: str | Query,
        stream: bool = False,
        approx: bool = False,
        tolerance: float | None = None,
        tenant: str | None = None,
    ) -> QueryResult | StreamedResult:
        """Run a federated query.

        ``stream=False`` (the default) answers with a fully materialized
        :class:`QueryResult`.  ``stream=True`` answers with a
        :class:`StreamedResult` iterator whose rows arrive incrementally
        — in exactly the order (and bytes) the bulk path would produce —
        holding O(members × chunk) memory instead of the whole result.

        ``approx=True`` (aggregate queries only) admits bounded-error
        tier-0 answers from merged sketches: the result carries per-cell
        ``error_bounds`` and members whose sketches are missing — or
        whose bounds exceed *tolerance* (worst relative error per cell)
        — fall back to the exact tier-1/2 paths per member.

        ``tenant`` keys the fan-out scheduler's fair queueing and rate
        limiting; when omitted the engine uses the dispatching request's
        ``clientId`` header (a query arriving through the federation
        service inherits the identity admission control saw), falling
        back to the shared default tenant.
        """
        query = self._parse(query)
        if approx and stream:
            raise QueryError("approx=True cannot stream (bounds need every row)")
        if approx and not query.is_aggregate:
            raise QueryError("approx=True requires an aggregate query")
        if tolerance is not None and not approx:
            raise QueryError("tolerance requires approx=True")
        if tenant is None:
            from repro.ogsi.dispatch import current_client_id

            tenant = current_client_id() or DEFAULT_TENANT
        if stream:
            return self._execute_stream(query, tenant=tenant)
        return self._execute_bulk(
            query, approx=approx, tolerance=tolerance, tenant=tenant
        )

    def _execute_bulk(
        self,
        query: Query,
        approx: bool = False,
        tolerance: float | None = None,
        tenant: str = DEFAULT_TENANT,
    ) -> QueryResult:
        fingerprint = query.fingerprint()
        if approx:
            # approximate results memoize under a disjoint key: an exact
            # caller must never be served bounded estimates (or vice
            # versa), even for the same query text
            fingerprint += f";approx[tol={tolerance!r}]"
        cached = self.plan_cache.get(fingerprint)
        if cached is not None:
            packed_rows, cached_bounds = split_bounds(cached)
            return QueryResult(
                rows=[ResultRow.unpack(r) for r in packed_rows],
                columns=query.output_columns,
                cached=True,
                plan=None,
                approx=approx,
                error_bounds=cached_bounds if approx else [],
            )
        # generation snapshot *before* planning: member stats read during
        # planning, and member data read during the fan-out, are both
        # superseded by any data-update delivered after this point — the
        # final snapshot comparison then discards instead of caching
        with self._coherence_lock:
            gen_snapshot = dict(self._generations)
            app_gen_snapshot = dict(self._app_generations)
            epoch_snapshot = self._epoch
        plan = self._plan(query, approx=approx, tolerance=tolerance)
        self.plan_modes[plan.effective_mode] += 1
        merger = StreamingMerger(query)
        fanout_members = [m for m in plan.members if not m.is_tier0]
        tier0_members = [m for m in plan.members if m.is_tier0]
        stats = {
            "executions": 0,
            "calls": 0,
            "records": 0,
            "skipped_metrics": 0,
            "errors": 0,
            "skippedMembers": len(plan.skipped),
            "estimatedBytes": plan.estimated_bytes,
            "payloadBytes": 0,
            "tier0Members": len(tier0_members),
            "estimatedRoundTrips": plan.estimated_round_trips,
        }
        # metrics the planner already proved away (skipped members count
        # all their metrics; surviving fan-out members count omitted
        # sub-queries — tier-0 members answered theirs, nothing skipped)
        stats["skipped_metrics"] = len(query.metrics) * (
            len(fanout_members) + len(plan.skipped)
        ) - sum(len(member.subqueries) for member in fanout_members)
        errors: list[str] = []
        deps: set[tuple[str, str]] = set()
        # a stats-proven skip is a read of the member's *statistics*: the
        # wildcard dep makes any later update to that member invalidate
        # (or stale-discard) this result, so the skip gets re-evaluated
        for skipped in plan.skipped:
            deps.add((skipped.app, "*"))
        # a tier-0 answer is likewise a read of the member's cached
        # stats/sketches: the wildcard dep plus the generation-snapshot
        # comparison in _finish_uncached guarantee an update racing this
        # query can never leave a stale tier-0 answer in the cache
        tracker = BoundsTracker(query) if approx and plan.tier0_capable else None
        for member in tier0_members:
            deps.add((member.app, "*"))
            if tracker is not None:
                tracker.add_estimates(member.app, member.tier0)
            else:
                # exact mode: the estimates are provably exact
                # (zero-width count/sum, proven extrema), so they fold
                # into the merge as synthetic getPRAgg buckets
                ctx = TaskContext(app=member.app)
                for metric, est in member.tier0:
                    if est.count_hi <= 0.0:
                        continue
                    record = AggregateRecord(
                        "",
                        int(round(est.count_lo)),
                        est.sum_lo,
                        est.min_exact if est.min_exact is not None else est.value_lo,
                        est.max_exact if est.max_exact is not None else est.value_hi,
                    )
                    merger.absorb_aggregates(ctx, metric, [record])
        tasks = self._collect_tasks(plan, stats)
        if tasks:
            if self.use_shared_pool:
                # engine-lifetime pool: no per-query thread create/join
                # churn; one rate-limit token is charged per query, and
                # BusyFault (ServerBusy) propagates to the caller un-
                # degraded — a shed is not a member failure
                pool = self._pool()
                pool.acquire_rate(tenant)
                pending = {pool.submit(task, tenant=tenant) for task in tasks}
                try:
                    # merge on this thread as completions stream in —
                    # unchanged from the per-query pool, byte-identical
                    while pending:
                        done, pending = wait(pending, return_when=FIRST_COMPLETED)
                        for future in done:
                            self._merge_payloads(merger, future, stats, errors, deps)
                except BaseException:
                    # hard failure: queued member tasks must not run
                    for future in pending:
                        future.cancel()
                    raise
            else:
                width = self._fanout_width(tasks)
                with ThreadPoolExecutor(max_workers=width) as legacy_pool:
                    pending = {legacy_pool.submit(task) for task in tasks}
                    try:
                        while pending:
                            done, pending = wait(pending, return_when=FIRST_COMPLETED)
                            for future in done:
                                self._merge_payloads(
                                    merger, future, stats, errors, deps
                                )
                    except BaseException:
                        # hard failure: don't let queued member tasks run
                        # to completion during pool shutdown
                        for future in pending:
                            future.cancel()
                        raise
            if errors and len(errors) == len(tasks):
                raise QueryError(
                    f"all {len(tasks)} member task(s) failed: {'; '.join(errors[:3])}"
                )
        error_bounds: list[dict[str, tuple[float, float]]] = []
        if tracker is not None:
            # interval merge: tier-0 estimates plus the fan-out members'
            # exact accumulators, with per-cell bounds keyed by group
            tracker.add_groups(merger.group_accumulators())
            unordered, bounds_by_key = tracker.rows()
            rows = order_rows(unordered, query)
            key_width = len(query.group_by)
            error_bounds = [
                bounds_by_key.get(tuple(str(v) for v in row.values[:key_width]), {})
                for row in rows
            ]
        else:
            rows = order_rows(merger.rows(), query)
            if approx:
                # approx requested but the query shape is not tier-0
                # capable: the exact pipeline answered, every cell exact
                error_bounds = [{} for _ in rows]
        self._finish_uncached(
            fingerprint, deps, gen_snapshot, app_gen_snapshot, epoch_snapshot,
            rows, errors, degraded=plan.stats_degraded,
            bounds_records=pack_bounds(error_bounds) if approx else None,
        )
        return QueryResult(
            rows=rows,
            columns=query.output_columns,
            cached=False,
            plan=plan,
            stats=stats,
            errors=errors,
            approx=approx,
            error_bounds=error_bounds,
        )

    # ----------------------------------------------------------- streaming
    def _execute_stream(
        self, query: Query, tenant: str = DEFAULT_TENANT
    ) -> StreamedResult:
        fingerprint = query.fingerprint()
        cached = self.plan_cache.get(fingerprint)
        if cached is not None:
            return StreamedResult(
                columns=query.output_columns,
                source=iter([ResultRow.unpack(r) for r in cached]),
                cached=True,
            )
        if query.is_aggregate or query.order_by is not None:
            # a global reduction or sort needs every row before the first
            # output row exists; run the bulk pipeline (which memoizes as
            # usual) and stream its finished rows
            result = self._execute_bulk(query, tenant=tenant)
            return StreamedResult(
                columns=result.columns,
                source=iter(result.rows),
                plan=result.plan,
                stats=result.stats,
                errors=result.errors,
            )
        with self._coherence_lock:
            gen_snapshot = dict(self._generations)
            app_gen_snapshot = dict(self._app_generations)
            epoch_snapshot = self._epoch
        plan = self._plan(query)
        self.plan_modes[plan.effective_mode] += 1
        stats = {
            "executions": 0,
            "calls": 0,
            "records": 0,
            "skipped_metrics": 0,
            "errors": 0,
            "skippedMembers": len(plan.skipped),
            "estimatedBytes": plan.estimated_bytes,
            "payloadBytes": 0,
            "chunkedCalls": 0,
            "bulkCalls": 0,
        }
        stats["skipped_metrics"] = len(query.metrics) * (
            len(plan.members) + len(plan.skipped)
        ) - sum(len(member.subqueries) for member in plan.members)
        errors: list[str] = []
        deps: set[tuple[str, str]] = set()
        for skipped in plan.skipped:
            deps.add((skipped.app, "*"))
        stats_lock = threading.Lock()
        streams = self._stream_tasks(plan, query, stats, stats_lock, deps, tenant)
        if streams and self.use_shared_pool:
            self._pool().acquire_rate(tenant)
        source = self._stream_rows(
            query, plan, fingerprint, streams, stats, errors, deps,
            gen_snapshot, app_gen_snapshot, epoch_snapshot,
        )
        return StreamedResult(
            columns=query.output_columns,
            source=source,
            plan=plan,
            stats=stats,
            errors=errors,
        )

    def _stream_tasks(
        self, plan: Plan, query: Query, stats, stats_lock, deps,
        tenant: str = DEFAULT_TENANT,
    ) -> list[MemberStream]:
        """One :class:`MemberStream` per selected execution (not started)."""
        runner = None
        if self.use_shared_pool:
            # producers run on the scheduler's elastic stream lane (slots
            # accounted to the tenant), never on the bounded sub-query
            # pool: a backpressure-blocked producer must not eat a slot
            # another tenant's bulk tasks need
            pool = self._pool()

            def runner(fn, _tenant=tenant):
                pool.spawn(fn, tenant=_tenant)

        streams: list[MemberStream] = []
        for member in plan.members:
            binding = self.members()[member.app]
            executions = self._select_executions(member, binding, stats)
            if not executions:
                continue
            if member.cost is not None and not member.cost.stats_missing:
                subqueries = list(member.subqueries)
            else:
                metrics = self._member_metrics(member.app, executions[0])
                subqueries = [sq for sq in member.subqueries if sq.metric in metrics]
                stats["skipped_metrics"] += len(member.subqueries) - len(subqueries)
            if not subqueries:
                continue
            stats["executions"] += len(executions)
            # sub-queries concatenate in canonical metric order so each
            # member stream is wholly sorted by the row key (app and exec
            # are constant within a stream)
            subqueries = sorted(subqueries, key=lambda sq: ordering_key(sq.metric))
            if member.cost is not None and member.cost.est_rows is not None:
                per_exec = max(1, member.cost.est_rows // max(1, len(executions)))
            else:
                per_exec = None
            for execution in executions:
                produce = self._stream_producer(
                    member, execution, subqueries, query, per_exec,
                    stats, stats_lock, deps,
                )
                streams.append(
                    MemberStream(
                        f"{member.app}:{len(streams)}",
                        produce,
                        chunk_depth=self.stream_chunk_depth,
                        runner=runner,
                    )
                )
        return streams

    def _stream_producer(
        self, member: MemberPlan, execution, subqueries, query: Query,
        per_exec: int | None, stats, stats_lock, deps,
    ):
        """Build the producer generator for one execution's stream.

        Remote executions with large (or unknown — bulk is the memory
        risk) estimated row counts drain through a server-``ordered``
        chunked cursor; provably small remote ones and local bindings
        use one bulk ``getPR`` plus a client-side canonical sort, which
        is cheaper than cursor round trips.  Either way the emitted
        chunks are sorted and value predicates are applied producer-side
        so filtered rows never cross the merge.
        """
        chunk_rows = self.stream_chunk_rows
        value_preds = query.predicates_on("value")
        use_cursor = not execution.is_local and (
            per_exec is None or per_exec >= self.stream_threshold_rows
        )

        def produce(stop):
            exec_id = self._execution_id(execution)
            deps.add((member.app, exec_id))
            foci = filter_foci(execution.foci(), member.foci)
            if not foci:
                return
            for sub in subqueries:
                if stop.is_set():
                    return
                if use_cursor:
                    rows = execution.get_pr_chunked(
                        sub.metric, foci, sub.start, sub.end, sub.result_type,
                        max_rows=chunk_rows, ordered=True,
                        accept_encodings=self.accept_encodings,
                    )
                    kind = "chunkedCalls"
                else:
                    results = execution.get_pr(
                        sub.metric, foci, sub.start, sub.end, sub.result_type
                    )
                    results.sort(key=pr_sort_key)
                    rows = iter(results)
                    kind = "bulkCalls"
                batch: list[ResultRow] = []
                records = payload_bytes = 0
                try:
                    for result in rows:
                        if stop.is_set():
                            return
                        records += 1
                        payload_bytes += len(result.pack())
                        if value_preds and not matches_value(result.value, value_preds):
                            continue
                        batch.append(
                            ResultRow(
                                RAW_COLUMNS,
                                (
                                    member.app,
                                    exec_id,
                                    result.metric,
                                    result.focus,
                                    result.result_type,
                                    result.start,
                                    result.end,
                                    result.value,
                                ),
                            )
                        )
                        if len(batch) >= chunk_rows:
                            yield batch
                            batch = []
                finally:
                    closer = getattr(rows, "close", None)
                    if closer is not None:
                        closer()
                    with stats_lock:
                        stats["calls"] += 1
                        stats[kind] += 1
                        stats["records"] += records
                        stats["payloadBytes"] += payload_bytes
                if batch:
                    yield batch

        return produce

    def _stream_rows(
        self, query: Query, plan: Plan, fingerprint: str,
        streams: list[MemberStream], stats, errors: list[str], deps,
        gen_snapshot, app_gen_snapshot, epoch_snapshot,
    ):
        """The consumer generator behind a raw-path StreamedResult.

        Starts the member streams on first iteration, merges, enforces
        LIMIT (sound under the heap invariant: every yielded row is a
        global minimum, so the first N are the bulk path's first N), and
        on clean exhaustion memoizes — only a *fully drained* stream
        with no member errors, and only while the accumulated rows stay
        under ``stream_memoize_max_bytes``.
        """
        limit = query.limit
        acc: list[ResultRow] | None = []
        acc_bytes = 0
        completed_scan = False

        def on_error(exc: BaseException) -> None:
            stats["errors"] += 1
            errors.append(f"{type(exc).__name__}: {exc}")

        for member_stream in streams:
            member_stream.start()
        yielded = 0
        try:
            merged = merge_streams(streams, on_error)
            while limit is None or yielded < limit:
                try:
                    row = next(merged)
                except StopIteration:
                    completed_scan = True
                    break
                yield row
                yielded += 1
                if acc is not None:
                    acc_bytes += len(row.pack())
                    if acc_bytes > self.stream_memoize_max_bytes:
                        acc = None
                    else:
                        acc.append(row)
        finally:
            for member_stream in streams:
                member_stream.close()
        if completed_scan and streams and errors and len(errors) == len(streams):
            raise QueryError(
                f"all {len(streams)} member task(s) failed: {'; '.join(errors[:3])}"
            )
        if acc is not None:
            self._finish_uncached(
                fingerprint, deps, gen_snapshot, app_gen_snapshot,
                epoch_snapshot, acc, errors, degraded=plan.stats_degraded,
            )

    def _finish_uncached(
        self,
        fingerprint: str,
        deps: set[tuple[str, str]],
        gen_snapshot: dict[tuple[str, str], int],
        app_gen_snapshot: dict[str, int],
        epoch_snapshot: int,
        rows: list[ResultRow],
        errors: list[str],
        degraded: bool = False,
        bounds_records: list[str] | None = None,
    ) -> None:
        """Memoize a freshly computed result, unless it must not be.

        Degraded results (per-task errors, or a plan built with missing
        member stats) are never cached; results any of whose member
        generations (or the global epoch) moved since the pre-planning
        snapshot are the insert-after-invalidate race and are discarded
        too.  Wildcard deps ``(app, "*")`` — members skipped on a stats
        proof, or answered at tier 0 from cached stats — compare the
        *app-level* generation.  ``bounds_records`` (approximate
        results) are stored after the packed rows.
        """
        if errors or degraded:
            return
        with self._coherence_lock:
            stale = self._epoch != epoch_snapshot or any(
                self._app_generations.get(dep[0], 0) != app_gen_snapshot.get(dep[0], 0)
                if dep[1] == "*"
                else self._generations.get(dep, 0) != gen_snapshot.get(dep, 0)
                for dep in deps
            )
            if stale:
                self.coherence["staleDiscards"] += 1
                return
            self.plan_cache.put(
                fingerprint,
                [row.pack() for row in rows] + list(bounds_records or ()),
            )
            self._plan_deps[fingerprint] = frozenset(deps)
            self._prune_deps_locked()

    def _prune_deps_locked(self) -> None:
        """Drop dependency records whose cache entries were LRU-evicted."""
        if len(self._plan_deps) <= 2 * max(1, len(self.plan_cache)):
            return
        self._plan_deps = {
            fp: dep
            for fp, dep in self._plan_deps.items()
            if self.plan_cache.contains(fp)
        }

    def invalidate_cache(self) -> int:
        """Drop all memoized query results; returns how many were dropped.

        Cached member statistics go too — a manual invalidation usually
        means "the stores changed under us", and stale stats could keep
        proving skips that no longer hold.
        """
        with self._coherence_lock:
            dropped = len(self.plan_cache)
            self.plan_cache.clear()
            self._plan_deps.clear()
            self._member_stats.clear()
            self._exec_stats.clear()
            self._stats_dirty.clear()
            self._epoch += 1
        return dropped

    # ----------------------------------------------------------- coherence
    def enable_coherence(self, container) -> int:
        """Subscribe a sink to every member Execution's data-update topic.

        Deploys a NotificationSink next to the engine (once) in
        *container*, walks every member's executions, and subscribes the
        sink to each one's ``data-update`` topic.  Safe to call again
        after :meth:`refresh_members` — already-subscribed executions are
        skipped.  Returns the number of *new* subscriptions made.
        """
        from repro.ogsi.notification import NotificationSinkBase

        if self._sink is None:
            self._sink = NotificationSinkBase(callback=self._on_update)
            self._sink_gsh = container.deploy(
                "services/FederatedQuery/coherence-sink", self._sink
            )
        sink_handle = self._sink_gsh.url()
        subscribed = 0
        for app, binding in self.members().items():
            for execution in binding.all_executions():
                if not hasattr(execution, "subscribe"):
                    continue  # local-bypass executions have no Services Layer
                exec_id = self._execution_id(execution)
                with self._coherence_lock:
                    self._source_keys[execution.gsh] = (app, exec_id)
                    self._exec_apps.setdefault(exec_id, set()).add(app)
                if execution.gsh in self._subscribed:
                    continue
                execution.subscribe("data-update", sink_handle)
                self._subscribed.add(execution.gsh)
                subscribed += 1
        with self._coherence_lock:
            self.coherence["subscriptions"] += subscribed
        return subscribed

    def _on_update(self, topic: str, message: str) -> None:
        """Data-update delivery: drop exactly the plans that read the
        updated execution.

        The message is ``execId|generation|sourceHandle|description``
        (see :meth:`repro.core.execution.ExecutionService.data_updated`).
        Attribution prefers the source handle (exec ids collide across
        Applications), then the exec-id -> apps map.  An update with no
        execution-level attribution is scoped to the *member* its source
        handle names (``ppg://host/services/<app>/...``) when that names
        a known member; only a source the engine cannot attribute at all
        falls back to a full cache clear — correctness over precision.

        Invalidation runs under the coherence lock; the view-maintenance
        hook runs *after* release (it re-plans and refetches member
        rows, which re-enters :meth:`_collect_stats`).
        """
        parts = message.split("|", 3)
        exec_id = parts[0]
        source = parts[2] if len(parts) >= 3 else ""
        member_clear: str | None = None
        full_clear = False
        with self._coherence_lock:
            self.coherence["notifications"] += 1
            known = self._source_keys.get(source)
            if known is not None:
                deps = [known]
            else:
                deps = [(app, exec_id) for app in self._exec_apps.get(exec_id, ())]
            if not deps:
                member_clear = self._attribute_source_locked(source)
                if member_clear is not None:
                    self._member_clear_locked(member_clear)
                else:
                    full_clear = True
                    self._full_clear_locked()
            for dep in deps:
                self._invalidate_dep_locked(dep)
        maintainer = self._view_maintainer
        if maintainer is None:
            return
        if deps:
            for app, dep_exec in deps:
                maintainer.on_update(app, dep_exec)
        elif member_clear is not None:
            maintainer.on_member_update(member_clear)
        elif full_clear:
            maintainer.on_full_refresh()

    def _invalidate_dep_locked(self, dep: tuple[str, str]) -> None:
        app = dep[0]
        self._generations[dep] = self._generations.get(dep, 0) + 1
        self._app_generations[app] = self._app_generations.get(app, 0) + 1
        # the member's cached statistics describe the pre-update
        # store: mark just the updated execution's share stale so
        # the next plan re-merges a delta instead of refetching
        # the whole member (whole-drop when deltas are disabled)
        if app in self._member_stats:
            self.coherence["statsInvalidations"] += 1
            if self.stats_deltas:
                self._stats_dirty.setdefault(app, set()).add(dep[1])
            else:
                self._member_stats.pop(app, None)
                self._exec_stats.pop(app, None)
        wildcard = (app, "*")
        for fingerprint, dep_set in list(self._plan_deps.items()):
            if dep in dep_set or wildcard in dep_set:
                del self._plan_deps[fingerprint]
                if self.plan_cache.remove(fingerprint):
                    self.coherence["invalidations"] += 1

    def _attribute_source_locked(self, source: str) -> str | None:
        """Last-resort attribution: the member app a source handle's
        path names.

        Site services deploy under ``services/<app>/...`` (factories,
        replicas, instances alike), so a parseable handle whose second
        path segment names a known member scopes the update to that
        member even when the engine never subscribed to the execution.
        """
        from repro.ogsi.gsh import GridServiceHandle

        try:
            gsh = GridServiceHandle.parse(source)
        except Exception:
            return None
        segments = gsh.path.split("/")
        if len(segments) < 2 or segments[0] != "services":
            return None
        app = segments[1]
        known = (
            {a for apps in self._exec_apps.values() for a in apps}
            | {key[0] for key in self._source_keys.values()}
            | set(self._member_stats)
            | set(self._app_generations)
            | set(self._bindings or ())
        )
        return app if app in known else None

    def _member_clear_locked(self, app: str) -> None:
        """Scope an execution-unattributable update to one member: drop
        only the plans (and stats) depending on *app*, not the whole
        federation's.  The epoch still bumps — any in-flight query may
        have read the member, so its result must not be cached."""
        self.coherence["memberClears"] += 1
        self._app_generations[app] = self._app_generations.get(app, 0) + 1
        self._epoch += 1
        if app in self._member_stats:
            self.coherence["statsInvalidations"] += 1
            self._member_stats.pop(app, None)
            self._exec_stats.pop(app, None)
        self._stats_dirty.pop(app, None)
        for fingerprint, dep_set in list(self._plan_deps.items()):
            if any(dep[0] == app for dep in dep_set):
                del self._plan_deps[fingerprint]
                if self.plan_cache.remove(fingerprint):
                    self.coherence["invalidations"] += 1

    def _full_clear_locked(self) -> None:
        """Unattributable update: clear everything, and bump the epoch
        so any in-flight query discards instead of re-caching stale
        rows."""
        self.coherence["fullClears"] += 1
        self.coherence["statsInvalidations"] += len(self._member_stats)
        self.plan_cache.clear()
        self._plan_deps.clear()
        self._member_stats.clear()
        self._exec_stats.clear()
        self._stats_dirty.clear()
        self._epoch += 1

    def coherence_stats(self) -> dict[str, int]:
        """Snapshot of the coherence counters plus tracked-plan count."""
        with self._coherence_lock:
            stats = dict(self.coherence)
            stats["trackedPlans"] = len(self._plan_deps)
        return stats

    # --------------------------------------------------------------- views
    def views(self):
        """The engine's :class:`~repro.fedquery.views.ViewMaintainer`
        (created on first use)."""
        if self._view_maintainer is None:
            from repro.fedquery.views import ViewMaintainer

            self._view_maintainer = ViewMaintainer(self)
        return self._view_maintainer

    def view_stats(self) -> dict[str, int]:
        """View-maintenance counters (all zero before any view exists)."""
        if self._view_maintainer is None:
            from repro.fedquery.views import empty_view_stats

            return empty_view_stats()
        return self._view_maintainer.stats()

    # ----------------------------------------------------------- internals
    def _parse(self, query: str | Query) -> Query:
        if isinstance(query, Query):
            return query.validate()
        return parse_query(query)

    def _plan(
        self,
        query: Query,
        approx: bool = False,
        tolerance: float | None = None,
        allow_tier0: bool = True,
    ) -> Plan:
        members = self.members()
        unknown = [name for name in query.sources if name not in members]
        if unknown:
            raise QueryError(
                f"unknown application(s) {unknown} "
                f"(published: {', '.join(members)})"
            )
        catalog = {
            name: self._member_params(name, binding)
            for name, binding in members.items()
        }
        stats = self._collect_stats(members) if self.cost_based else None
        return plan_query(
            query,
            catalog,
            stats,
            approx=approx,
            tolerance=tolerance,
            tier0=self.tier0 and allow_tier0,
        )

    def _collect_stats(self, members: dict[str, object]) -> dict[str, StoreStats | None]:
        """Member stats for the cost model, from the per-member cache.

        A failed ``getStats`` maps the member to ``None`` (the planner
        falls back to the global mode for it and never skips it) and is
        *not* cached, so the next plan retries; the resulting degraded
        plan's result is likewise not memoized (``Plan.stats_degraded``).
        """
        collected: dict[str, StoreStats | None] = {}
        for name, binding in members.items():
            with self._coherence_lock:
                stats = self._member_stats.get(name)
                dirty = self._stats_dirty.pop(name, None)
            if stats is not None and dirty:
                stats = self._refresh_stats_delta(name, binding, dirty)
            if stats is None:
                try:
                    stats = binding.get_stats()
                except Exception:
                    collected[name] = None
                    continue
                with self._coherence_lock:
                    self._member_stats[name] = stats
                    # app-level numbers supersede any per-exec baseline
                    self._exec_stats.pop(name, None)
            collected[name] = stats
        return collected

    def _refresh_stats_delta(
        self, name: str, binding, dirty: set[str]
    ) -> StoreStats | None:
        """Re-merge a member's stats after refetching only what changed.

        Merged :class:`StoreStats` are not invertible (a removed
        execution's min/max cannot be subtracted back out), so the engine
        keeps a per-execution baseline — established lazily, the first
        time a delta is needed — refetches just the executions the
        updates touched, and re-merges locally.  Any trouble (unknown
        execution id, transport failure) returns ``None`` after dropping
        the member's cached stats wholesale: exactly the pre-delta
        fallback, so correctness never depends on the fast path.
        """
        with self._coherence_lock:
            baseline = self._exec_stats.get(name)
            per_exec = dict(baseline) if baseline is not None else None
        try:
            if per_exec is None:
                per_exec = {}
                for execution in binding.all_executions():
                    per_exec[self._execution_id(execution)] = execution.get_stats()
                applied = len(dirty & set(per_exec))
            else:
                applied = 0
                for exec_id in sorted(dirty):
                    matches = binding.query_executions("execid", exec_id)
                    if not matches:
                        raise QueryError(f"no execution {exec_id!r} in member {name}")
                    per_exec[exec_id] = matches[0].get_stats()
                    applied += 1
            merged = StoreStats.merge(list(per_exec.values()))
        except Exception:
            with self._coherence_lock:
                self._member_stats.pop(name, None)
                self._exec_stats.pop(name, None)
            return None
        with self._coherence_lock:
            self._exec_stats[name] = per_exec
            self._member_stats[name] = merged
            self.coherence["statsDeltas"] += applied
        return merged

    def _select_executions(self, member: MemberPlan, binding, stats) -> list:
        if member.selector is None:
            executions = binding.all_executions()
            stats["calls"] += 1
            return executions
        selected: dict[str, object] | None = None
        for alternatives in member.selector.conjuncts:
            term: dict[str, object] = {}
            for attribute, value, operator in alternatives:
                for execution in binding.query_executions(attribute, value, operator):
                    term.setdefault(execution.gsh, execution)
                stats["calls"] += 1
            if selected is None:
                selected = term
            else:
                selected = {g: e for g, e in selected.items() if g in term}
            if not selected:
                return []
        return list(selected.values()) if selected else []

    def _collect_tasks(self, plan: Plan, stats) -> list:
        tasks = []
        for member in plan.members:
            if member.is_tier0:
                # answered at plan time from cached stats/sketches — no
                # execution selection, no calls, nothing to fan out
                continue
            binding = self.members()[member.app]
            executions = self._select_executions(member, binding, stats)
            if not executions:
                continue
            if member.cost is not None and not member.cost.stats_missing:
                # the planner already dropped metrics the member's stats
                # prove absent; probing one execution here would be
                # *wrong* for heterogeneous members (executions[0] need
                # not record every metric its siblings do)
                subqueries = list(member.subqueries)
            else:
                metrics = self._member_metrics(member.app, executions[0])
                subqueries = [sq for sq in member.subqueries if sq.metric in metrics]
                stats["skipped_metrics"] += len(member.subqueries) - len(subqueries)
            if not subqueries:
                continue
            stats["executions"] += len(executions)
            for execution in executions:
                tasks.append(self._make_task(member, execution, subqueries))
        return tasks

    def _fanout_width(self, tasks: list) -> int:
        """Pool width for one query's fan-out.

        Only the Managers of members that actually contribute tasks
        count toward the width — a member the cost model skipped (or
        that matched no executions) gets no threads sized for it — and
        the width never exceeds the task count, so a small query on a
        wide federation doesn't spawn idle workers.
        """
        if self.max_workers is not None:
            width = self.max_workers
        else:
            apps = {getattr(task, "app", None) for task in tasks}
            if None in apps:
                # tasks of unknown provenance (e.g. wrapped in tests):
                # fall back to the whole topology
                stats = [m.stats() for m in self.managers.values()]
            else:
                stats = [
                    manager.stats()
                    for name, manager in self.managers.items()
                    if name in apps
                ]
            width = choose_fanout(
                stats, slots_per_replica=self.fanout_slots_per_replica
            )
        if tasks:
            width = max(1, min(width, len(tasks)))
        return width

    def _make_task(self, member: MemberPlan, execution, subqueries):
        def run():
            # exec_id is always resolved (cached per GSH): the coherence
            # layer keys plan dependencies on (app, exec_id)
            exec_id = self._execution_id(execution)
            info = dict(execution.info()) if member.needs_info else None
            ctx = TaskContext(app=member.app, exec_id=exec_id, info=info)
            foci = filter_foci(execution.foci(), member.foci)
            payloads: list[tuple[str, str, list]] = []
            if not foci:
                return ctx, payloads
            for sub in subqueries:
                if sub.mode == "aggregate":
                    records = execution.get_pr_agg(
                        sub.metric,
                        foci,
                        sub.start,
                        sub.end,
                        sub.result_type,
                        min_value=sub.min_value,
                        max_value=sub.max_value,
                        group_by="focus" if sub.group_by_focus else "",
                    )
                    payloads.append((sub.metric, "aggregate", records))
                else:
                    results = execution.get_pr(
                        sub.metric, foci, sub.start, sub.end, sub.result_type
                    )
                    payloads.append((sub.metric, "raw", results))
            return ctx, payloads

        run.app = member.app  # provenance for fan-out sizing
        return run

    def _merge_payloads(
        self,
        merger: StreamingMerger,
        future: Future,
        stats,
        errors: list[str],
        deps: set[tuple[str, str]],
    ) -> None:
        """Fold one completed member task into the merger.

        A :class:`QueryError` is a hard failure (planning/protocol — the
        whole query is wrong) and propagates; any other per-task
        exception degrades the result: it is counted, recorded, and the
        surviving members' rows still come back.
        """
        try:
            ctx, payloads = future.result()
        except QueryError:
            raise
        except Exception as exc:
            stats["errors"] += 1
            errors.append(f"{type(exc).__name__}: {exc}")
            return
        deps.add((ctx.app, ctx.exec_id))
        for metric, kind, payload in payloads:
            stats["calls"] += 1
            stats["records"] += len(payload)
            stats["payloadBytes"] += sum(len(item.pack()) for item in payload)
            if kind == "aggregate":
                merger.absorb_aggregates(ctx, metric, payload)
            else:
                merger.absorb_results(ctx, metric, payload)
