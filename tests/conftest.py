"""Shared fixtures: tiny datasets and a wired grid."""

from __future__ import annotations

import pytest

from repro.datastores.generators.hpl import generate_hpl
from repro.datastores.generators.presta import generate_presta
from repro.datastores.generators.smg98 import generate_smg98
from repro.datastores.textfiles import TextFileStore
from repro.experiments.common import GridScale, build_grid


def pytest_addoption(parser):
    parser.addoption(
        "--seed",
        type=int,
        default=0,
        help="deterministic offset mixed into every randomized oracle suite "
        "(default 0 reproduces the checked-in runs)",
    )


@pytest.fixture(scope="session")
def oracle_seed(request) -> int:
    """The --seed offset; randomized suites mix it into their RNG seeds."""
    return request.config.getoption("--seed")


@pytest.fixture(scope="session")
def hpl_dataset():
    return generate_hpl(seed=7, num_executions=20)


@pytest.fixture(scope="session")
def hpl_db(hpl_dataset):
    return hpl_dataset.to_database()


@pytest.fixture(scope="session")
def smg98_dataset():
    return generate_smg98(seed=11, num_executions=3, intervals_per_execution=400, messages_per_execution=80)


@pytest.fixture(scope="session")
def smg98_db(smg98_dataset):
    return smg98_dataset.to_database()


@pytest.fixture(scope="session")
def presta_dataset():
    return generate_presta(seed=13, num_executions=4)


@pytest.fixture(scope="session")
def presta_store(presta_dataset, tmp_path_factory):
    directory = tmp_path_factory.mktemp("presta")
    presta_dataset.write_files(directory)
    return TextFileStore(str(directory))


@pytest.fixture(scope="session")
def shared_grid():
    """A tiny three-source grid for read-only tests."""
    grid = build_grid(GridScale.tiny())
    yield grid
    grid.cleanup()


@pytest.fixture()
def fresh_grid():
    """A tiny grid for tests that mutate state."""
    grid = build_grid(GridScale.tiny())
    yield grid
    grid.cleanup()
