"""Mergeable-sketch math: soundness of bounds under merge and rebin.

The tier-0 answer path trusts two invariants unconditionally — the true
filtered aggregate lies within :class:`WindowEstimate` bounds, and
``StoreStats.merge`` only keeps a sketch when every contributing part
carried one.  This file pins both, plus the degenerate shapes the issue
calls out: an empty member, an all-null (never-recorded) metric, a
single-row ``min == max`` sketch, and ``value_fraction`` clamping when a
predicate lands exactly on a window boundary.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.core.semantic import MetricStats, StoreStats
from repro.fedquery.ast import Predicate
from repro.fedquery.sketch import (
    EMPTY_ESTIMATE,
    DistinctSketch,
    MetricSketch,
    estimate_window,
    mean_bounds,
    sketches_from_values,
)
from repro.fedquery.pushdown import matches_value


def pred(op: str, bound: float) -> Predicate:
    return Predicate(field="value", op=op, value=repr(bound))


def check_sound(sketch: MetricSketch, values: list[float], preds) -> None:
    """The exact filtered aggregates must sit inside the sketch bounds."""
    est = estimate_window(sketch, preds)
    selected = [v for v in values if matches_value(v, preds)]
    assert est.count_lo - 1e-9 <= len(selected) <= est.count_hi + 1e-9
    total = math.fsum(selected)
    assert est.sum_lo - 1e-9 <= total <= est.sum_hi + 1e-9
    if selected:
        low, high = mean_bounds(est)
        assert low - 1e-9 <= total / len(selected) <= high + 1e-9
        assert est.value_lo - 1e-9 <= min(selected)
        assert max(selected) <= est.value_hi + 1e-9
        if est.min_exact is not None:
            assert est.min_exact == min(selected)
        if est.max_exact is not None:
            assert est.max_exact == max(selected)
    else:
        assert est.count_lo == 0.0


class TestDegenerateShapes:
    def test_empty_member_sketch(self):
        sketch = MetricSketch.from_values("m", [])
        assert sketch.count == 0 and sketch.buckets() == []
        assert estimate_window(sketch, (pred(">", 0.0),)) is EMPTY_ESTIMATE
        # merging an empty part in changes nothing
        live = MetricSketch.from_values("m", [1.0, 2.0, 3.0])
        merged = MetricSketch.merge([sketch, live])
        assert merged.count == 3 and merged.total == live.total

    def test_all_empty_merge(self):
        merged = MetricSketch.merge(
            [MetricSketch.from_values("m", []), MetricSketch.from_values("m", [])]
        )
        assert merged.count == 0
        assert estimate_window(merged, ()) is EMPTY_ESTIMATE

    def test_single_row_min_equals_max(self):
        sketch = MetricSketch.from_values("m", [42.0])
        assert sketch.minimum == sketch.maximum == 42.0
        assert sketch.bucket_width() == 0.0
        # the point either fully matches or fully misses — always exact
        hit = estimate_window(sketch, (pred(">=", 42.0),))
        assert hit.exact and hit.count_lo == 1.0 and hit.sum_lo == 42.0
        assert hit.min_exact == hit.max_exact == 42.0
        miss = estimate_window(sketch, (pred(">", 42.0),))
        assert miss.empty

    def test_constant_valued_rows(self):
        values = [5.0] * 7
        sketch = MetricSketch.from_values("m", values)
        check_sound(sketch, values, (pred("=", 5.0),))
        est = estimate_window(sketch, (pred("=", 5.0),))
        assert est.exact and est.count_lo == 7.0

    def test_point_mass_merges_with_spread(self):
        """A degenerate (min==max) part rebins into a wide one soundly."""
        point = [100.0] * 3
        spread = [float(v) for v in range(0, 300, 7)]
        merged = MetricSketch.merge(
            [MetricSketch.from_values("m", point), MetricSketch.from_values("m", spread)]
        )
        for preds in [(pred(">", 99.0), pred("<", 101.0)), (pred(">=", 150.0),)]:
            check_sound(merged, point + spread, preds)


class TestBoundaryClamping:
    """Predicates landing exactly on window edges must clamp, not leak."""

    VALUES = [float(v) for v in range(10, 110)]  # min 10, max 109

    def test_fraction_clamped_at_lower_edge(self):
        sketch = MetricSketch.from_values("m", self.VALUES)
        # '>= min' is vacuous: exact full answer, estimate not above count
        est = estimate_window(sketch, (pred(">=", 10.0),))
        assert est.exact and est.count_lo == float(len(self.VALUES))

    def test_fraction_clamped_at_upper_edge(self):
        sketch = MetricSketch.from_values("m", self.VALUES)
        est = estimate_window(sketch, (pred("<=", 109.0),))
        assert est.exact and est.count_hi == float(len(self.VALUES))

    def test_strict_bound_at_edge_is_unsatisfiable(self):
        sketch = MetricSketch.from_values("m", self.VALUES)
        assert estimate_window(sketch, (pred("<", 10.0),)).empty
        assert estimate_window(sketch, (pred(">", 109.0),)).empty

    def test_estimate_stays_inside_bounds_on_bucket_edges(self):
        sketch = MetricSketch.from_values("m", self.VALUES)
        width = sketch.bucket_width()
        for k in range(len(sketch.counts) + 1):
            boundary = sketch.minimum + k * width
            for op in ("<", "<=", ">", ">="):
                est = estimate_window(sketch, (pred(op, boundary),))
                assert est.count_lo <= est.count_est <= est.count_hi
                assert est.sum_lo <= est.sum_est <= est.sum_hi
                check_sound(sketch, self.VALUES, (pred(op, boundary),))

    def test_window_outside_range_clamps_to_zero_or_all(self):
        sketch = MetricSketch.from_values("m", self.VALUES)
        assert estimate_window(sketch, (pred(">", 1000.0),)).empty
        est = estimate_window(sketch, (pred(">", -1000.0),))
        assert est.exact and est.count_lo == float(len(self.VALUES))


class TestMergeSoundnessOracle:
    """Randomized mini-oracle: arbitrary partitions and ranges, the
    merged sketch's bounds always contain the exact filtered answers."""

    def test_random_partitions_stay_sound(self, oracle_seed):
        rng = random.Random(4400 + oracle_seed)
        for trial in range(40):
            parts: list[list[float]] = []
            for _ in range(rng.randint(1, 5)):
                lo = rng.uniform(-500.0, 500.0)
                span = rng.uniform(0.0, 400.0)
                parts.append(
                    [rng.uniform(lo, lo + span) for _ in range(rng.randint(0, 60))]
                )
            merged = MetricSketch.merge(
                [MetricSketch.from_values("m", part) for part in parts]
            )
            values = [v for part in parts for v in part]
            assert merged.count == len(values)
            for _ in range(6):
                op = rng.choice(["<", "<=", ">", ">=", "=", "!="])
                if values and rng.random() < 0.4:
                    bound = rng.choice(values)  # hit edges/exact rows often
                else:
                    bound = rng.uniform(-600.0, 600.0)
                check_sound(merged, values, (pred(op, bound),))

    def test_repeated_merges_accumulate_fuzz_not_unsoundness(self, oracle_seed):
        rng = random.Random(8800 + oracle_seed)
        values = [rng.uniform(0, 10) for _ in range(20)]
        sketch = MetricSketch.from_values("m", values)
        values = list(values)
        for round_index in range(5):
            extra = [rng.uniform(round_index * 7.0, round_index * 7.0 + 30.0) for _ in range(15)]
            sketch = MetricSketch.merge([sketch, MetricSketch.from_values("m", extra)])
            values.extend(extra)
            assert sketch.fuzz >= 0.0
            check_sound(sketch, values, (pred(">", 12.5),))
            check_sound(sketch, values, (pred("<=", 20.0), pred(">", 5.0)))


class TestStoreStatsMerge:
    def _stats(self, metric_values: dict[str, list[float]], with_sketches=True):
        metrics = tuple(
            MetricStats(
                metric=name,
                rows=len(values),
                minimum=min(values) if values else 0.0,
                maximum=max(values) if values else 0.0,
            )
            for name, values in metric_values.items()
        )
        sketches = sketches_from_values(metric_values) if with_sketches else ()
        return StoreStats(
            executions=1, start=0.0, end=1.0, foci=("/R",), types=("synthetic",),
            metrics=metrics, sketches=sketches,
        )

    def test_all_null_metric_merges_to_zero_rows(self):
        """A metric present in the schema but never recorded anywhere."""
        merged = StoreStats.merge([self._stats({"m": []}), self._stats({"m": []})])
        entry = merged.metric("m")
        assert entry is not None and entry.rows == 0
        sketch = merged.sketch("m")
        # either no sketch survives or it proves the zero-row answer
        assert sketch is None or sketch.count == 0

    def test_sketch_dropped_when_any_live_part_lacks_one(self):
        with_sketch = self._stats({"m": [1.0, 2.0]})
        without = self._stats({"m": [3.0, 4.0]}, with_sketches=False)
        merged = StoreStats.merge([with_sketch, without])
        assert merged.metric("m").rows == 4
        assert merged.sketch("m") is None  # partial sketch would undercount

    def test_zero_row_sketchless_part_does_not_drop_the_sketch(self):
        live = self._stats({"m": [1.0, 2.0]})
        empty = self._stats({"m": []}, with_sketches=False)
        merged = StoreStats.merge([live, empty])
        sketch = merged.sketch("m")
        assert sketch is not None and sketch.count == 2

    def test_merged_sketch_matches_value_union(self):
        a = self._stats({"m": [1.0, 5.0, 9.0]})
        b = self._stats({"m": [100.0, 104.0]})
        merged = StoreStats.merge([a, b])
        check_sound(merged.sketch("m"), [1.0, 5.0, 9.0, 100.0, 104.0], (pred(">", 4.0),))

    def test_distinct_sketches_or_together(self):
        a = StoreStats(
            1, 0.0, 1.0, (), (), (),
            distincts=(DistinctSketch.from_values("numprocs", ["4", "8"]),),
        )
        b = StoreStats(
            1, 0.0, 1.0, (), (), (),
            distincts=(DistinctSketch.from_values("numprocs", ["8", "16"]),),
        )
        merged = StoreStats.merge([a, b])
        combined = DistinctSketch.from_values("numprocs", ["4", "8", "16"])
        assert merged.distinct("numprocs").bitmap == combined.bitmap
        assert merged.distinct("numprocs").estimate() >= 2.0


class TestWireRoundTrips:
    def test_metric_sketch_roundtrip(self):
        sketch = MetricSketch.from_values("elapsed_us", [1.5, 2.25, 99.0, -3.0])
        packed = sketch.pack()
        kind, _, rest = packed.partition("|")
        assert kind == "sketch"
        assert MetricSketch.unpack(rest) == sketch

    def test_rebinned_sketch_roundtrip_preserves_fuzz(self):
        merged = MetricSketch.merge(
            [
                MetricSketch.from_values("m", [0.0, 10.0, 20.0]),
                MetricSketch.from_values("m", [100.0, 230.0]),
            ]
        )
        assert merged.fuzz > 0.0 and merged.exact_buckets is False
        _, _, rest = merged.pack().partition("|")
        assert MetricSketch.unpack(rest) == merged

    def test_distinct_sketch_roundtrip(self):
        sketch = DistinctSketch.from_values("machine", ["a", "b", "c"])
        _, _, rest = sketch.pack().partition("|")
        assert DistinctSketch.unpack(rest) == sketch

    def test_store_stats_records_carry_sketches(self):
        stats = StoreStats(
            executions=2, start=0.0, end=9.0, foci=("/R",), types=("synthetic",),
            metrics=(MetricStats("m", 3, 1.0, 9.0),),
            sketches=(MetricSketch.from_values("m", [1.0, 4.0, 9.0]),),
            distincts=(DistinctSketch.from_values("numprocs", ["4"]),),
        )
        restored = StoreStats.unpack_records(stats.pack_records())
        assert restored == stats

    def test_bad_sketch_record_raises(self):
        with pytest.raises(ValueError, match="bad MetricSketch"):
            MetricSketch.unpack("m|1|2")
        with pytest.raises(ValueError, match="bad StoreStats record"):
            StoreStats.unpack_records(["sketch|m|not-enough-fields"])
