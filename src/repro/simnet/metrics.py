"""Instrumentation: counters, byte accounting, and named timers.

The Table 4 experiment needs, per query: total elapsed time at the
Virtualization layer, elapsed time at the Mapping layer, and the number
of bytes moved over the transport.  A :class:`Recorder` threaded through
the stack collects all three without the layers knowing about each other.
"""

from __future__ import annotations

import math
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.simnet.clock import Clock, RealClock


@dataclass
class TimerStats:
    """Summary statistics over a series of duration samples (seconds)."""

    samples: list[float] = field(default_factory=list)

    def add(self, seconds: float) -> None:
        self.samples.append(seconds)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        return sum(self.samples)

    @property
    def mean(self) -> float:
        return self.total / len(self.samples) if self.samples else 0.0

    @property
    def stdev(self) -> float:
        n = len(self.samples)
        if n < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((x - mu) ** 2 for x in self.samples) / (n - 1))

    @property
    def cov(self) -> float:
        """Coefficient of variation (stdev / mean), 0 for a zero mean."""
        mu = self.mean
        return self.stdev / mu if mu else 0.0

    @property
    def minimum(self) -> float:
        return min(self.samples) if self.samples else 0.0

    @property
    def maximum(self) -> float:
        return max(self.samples) if self.samples else 0.0


class Recorder:
    """Mutable sink for counters, byte totals, and named timers.

    Thread-safe: the dispatch core serves requests concurrently, so the
    transport (and anything else holding a recorder) increments counters
    from many threads at once.
    """

    def __init__(self, clock: Clock | None = None) -> None:
        self.clock: Clock = clock or RealClock()
        self.counters: dict[str, int] = {}
        self.timers: dict[str, TimerStats] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------ counters
    def incr(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + amount

    def count(self, name: str) -> int:
        return self.counters.get(name, 0)

    def record_bytes(self, direction: str, nbytes: int) -> None:
        """Account transport bytes; direction is ``"sent"`` or ``"received"``."""
        if direction not in ("sent", "received"):
            raise ValueError(f"unknown direction {direction!r}")
        self.incr(f"bytes_{direction}", nbytes)

    @property
    def bytes_sent(self) -> int:
        return self.count("bytes_sent")

    @property
    def bytes_received(self) -> int:
        return self.count("bytes_received")

    @property
    def bytes_total(self) -> int:
        return self.bytes_sent + self.bytes_received

    # -------------------------------------------------------------- timers
    def timer(self, name: str) -> TimerStats:
        with self._lock:
            stats = self.timers.get(name)
            if stats is None:
                stats = TimerStats()
                self.timers[name] = stats
            return stats

    @contextmanager
    def time(self, name: str) -> Iterator[None]:
        """Context manager recording one duration sample into *name*."""
        start = self.clock.now()
        try:
            yield
        finally:
            self.timer(name).add(self.clock.now() - start)

    def add_sample(self, name: str, seconds: float) -> None:
        self.timer(name).add(seconds)

    # ------------------------------------------------------------- control
    def reset(self) -> None:
        with self._lock:
            self.counters.clear()
            self.timers.clear()

    def snapshot(self) -> dict[str, object]:
        """A plain-dict view (counters + per-timer mean/count) for reports."""
        return {
            "counters": dict(self.counters),
            "timers": {
                name: {"count": t.count, "mean": t.mean, "total": t.total}
                for name, t in self.timers.items()
            },
        }
