#!/usr/bin/env python
"""GSI-style security: signed requests and proxy delegation (§7).

The thesis's prototype "does not address security"; its future-work
section proposes GT3.2's Grid Security Infrastructure with public-key
message protection and single-sign-on credential delegation.  This
example turns on the reproduction's HMAC-based equivalent:

* the site container rejects unsigned or forged requests;
* a user signs on once, delegates a short-lived proxy credential, and
  the client stub signs every call with it;
* an expired proxy is rejected.
"""

from repro.core import PPerfGridClient, PPerfGridSite, SiteConfig
from repro.core.client import ApplicationBinding
from repro.core.semantic import APPLICATION_PORTTYPE
from repro.datastores import generate_hpl
from repro.gsi import CertificateAuthority, make_verifier, signature_header_provider
from repro.mapping import HplRdbmsWrapper
from repro.ogsi import GridEnvironment
from repro.ogsi.porttypes import FACTORY_PORTTYPE
from repro.simnet.clock import VirtualClock
from repro.soap import SoapFault


def main() -> None:
    clock = VirtualClock()
    env = GridEnvironment(clock=clock)
    ca = CertificateAuthority("ExampleGrid-CA")

    site = PPerfGridSite(
        env,
        SiteConfig("secure.example.org:8080", "HPL"),
        HplRdbmsWrapper(generate_hpl(num_executions=8).to_database()),
    )
    # Require a valid signature on every request to this container.
    env.container_for("secure.example.org:8080").verifier = make_verifier(ca, clock)

    # Unsigned requests are now rejected at the container ingress.
    client = PPerfGridClient(env)
    try:
        client.bind(site.factory_url, "HPL")
    except SoapFault as fault:
        print(f"Unsigned request rejected: {fault.fault_message}")

    # Single sign-on: issue a credential, delegate a 1-hour proxy.
    alice = ca.issue("/O=ExampleGrid/CN=alice")
    proxy = alice.delegate(lifetime=3600.0, issued_at=clock.now())
    ca.register_proxy(proxy)
    print(f"Issued proxy {proxy.identity!r}, expires at t={proxy.expires_at}")

    headers = signature_header_provider(proxy)
    factory_stub = env.stub_for_handle(site.factory_url, FACTORY_PORTTYPE, headers)
    instance_gsh = factory_stub.CreateService([])
    app = ApplicationBinding(env, instance_gsh, "HPL")
    # Rebind the application stub with signing headers too.
    app.stub = env.stub_for_handle(instance_gsh, APPLICATION_PORTTYPE, headers)
    print("Signed bind succeeded; executions:", app.num_executions())

    # Fast-forward past the proxy lifetime: calls start failing.
    clock.advance(7200.0)
    try:
        app.num_executions()
    except SoapFault as fault:
        print(f"After expiry: {fault.fault_message}")


if __name__ == "__main__":
    main()
