"""Tests for minidb transactions (undo-log BEGIN/COMMIT/ROLLBACK)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.minidb import Database, ProgrammingError, connect


@pytest.fixture()
def conn():
    connection = connect("txn")
    connection.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, grp TEXT, x INTEGER)"
    )
    connection.execute(
        "INSERT INTO t VALUES (1, 'a', 10), (2, 'a', 20), (3, 'b', 30)"
    )
    return connection


def _snapshot(conn):
    return conn.execute("SELECT * FROM t ORDER BY id").fetchall()


class TestBasics:
    def test_commit_keeps_changes(self, conn):
        conn.begin()
        conn.execute("INSERT INTO t VALUES (4, 'c', 40)")
        conn.execute("UPDATE t SET x = 99 WHERE id = 1")
        conn.commit()
        assert conn.execute("SELECT COUNT(*) FROM t").scalar() == 4
        assert conn.execute("SELECT x FROM t WHERE id = 1").scalar() == 99

    def test_rollback_insert(self, conn):
        before = _snapshot(conn)
        conn.begin()
        conn.execute("INSERT INTO t VALUES (4, 'c', 40)")
        conn.rollback()
        assert _snapshot(conn) == before
        # The PK is free again after rollback.
        conn.execute("INSERT INTO t VALUES (4, 'c', 41)")
        assert conn.execute("SELECT x FROM t WHERE id = 4").scalar() == 41

    def test_rollback_delete(self, conn):
        before = _snapshot(conn)
        conn.begin()
        conn.execute("DELETE FROM t WHERE grp = 'a'")
        assert conn.execute("SELECT COUNT(*) FROM t").scalar() == 1
        conn.rollback()
        assert _snapshot(conn) == before

    def test_rollback_update(self, conn):
        before = _snapshot(conn)
        conn.begin()
        conn.execute("UPDATE t SET x = x + 1000, grp = 'z'")
        conn.rollback()
        assert _snapshot(conn) == before

    def test_rollback_mixed_sequence(self, conn):
        before = _snapshot(conn)
        conn.begin()
        conn.execute("DELETE FROM t WHERE id = 2")
        conn.execute("INSERT INTO t VALUES (2, 'new', 0)")  # reuse freed PK
        conn.execute("UPDATE t SET x = -1 WHERE id = 2")
        conn.execute("INSERT INTO t VALUES (9, 'x', 9)")
        conn.rollback()
        assert _snapshot(conn) == before

    def test_rollback_restores_indexes(self, conn):
        conn.execute("CREATE INDEX idx_grp ON t (grp)")
        conn.begin()
        conn.execute("UPDATE t SET grp = 'moved' WHERE id = 1")
        conn.execute("DELETE FROM t WHERE id = 3")
        conn.rollback()
        assert conn.execute("SELECT id FROM t WHERE grp = 'a' ORDER BY id").fetchall() == [
            (1,),
            (2,),
        ]
        assert conn.execute("SELECT id FROM t WHERE grp = 'b'").fetchall() == [(3,)]
        assert conn.execute("SELECT id FROM t WHERE grp = 'moved'").fetchall() == []


class TestLifecycle:
    def test_nested_begin_rejected(self, conn):
        conn.begin()
        with pytest.raises(ProgrammingError):
            conn.begin()
        conn.rollback()

    def test_commit_without_begin_rejected(self, conn):
        with pytest.raises(ProgrammingError):
            conn.commit()
        with pytest.raises(ProgrammingError):
            conn.rollback()

    def test_ddl_inside_transaction_rejected(self, conn):
        conn.begin()
        with pytest.raises(ProgrammingError):
            conn.execute("CREATE TABLE u (a INTEGER)")
        with pytest.raises(ProgrammingError):
            conn.execute("DROP TABLE t")
        with pytest.raises(ProgrammingError):
            conn.execute("CREATE INDEX i ON t (grp)")
        conn.rollback()

    def test_selects_allowed_inside_transaction(self, conn):
        conn.begin()
        conn.execute("INSERT INTO t VALUES (7, 'q', 7)")
        # The transaction reads its own writes.
        assert conn.execute("SELECT COUNT(*) FROM t").scalar() == 4
        conn.rollback()

    def test_context_manager_commits(self, conn):
        with conn.transaction():
            conn.execute("INSERT INTO t VALUES (5, 'c', 50)")
        assert conn.execute("SELECT COUNT(*) FROM t").scalar() == 4

    def test_context_manager_rolls_back_on_error(self, conn):
        before = _snapshot(conn)
        with pytest.raises(RuntimeError):
            with conn.transaction():
                conn.execute("DELETE FROM t")
                raise RuntimeError("abort")
        assert _snapshot(conn) == before

    def test_autocommit_outside_transaction(self, conn):
        conn.execute("INSERT INTO t VALUES (8, 'auto', 8)")
        # Nothing to roll back — the insert is already durable.
        with pytest.raises(ProgrammingError):
            conn.rollback()
        assert conn.execute("SELECT COUNT(*) FROM t").scalar() == 4


class TestCompactionInteraction:
    def test_compaction_deferred_until_commit(self):
        conn = connect("big")
        conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        conn.execute(
            "INSERT INTO t VALUES " + ", ".join(f"({i})" for i in range(200))
        )
        conn.begin()
        conn.execute("DELETE FROM t WHERE id < 150")
        table = conn.database.table("t")
        # Tombstones still present: compaction must not run mid-txn.
        assert any(row is None for row in table.rows)
        conn.commit()
        # Commit runs the deferred compaction.
        assert all(row is not None for row in table.rows)
        assert conn.execute("SELECT COUNT(*) FROM t").scalar() == 50

    def test_rollback_after_mass_delete(self):
        conn = connect("big2")
        conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        conn.execute(
            "INSERT INTO t VALUES " + ", ".join(f"({i})" for i in range(200))
        )
        conn.begin()
        conn.execute("DELETE FROM t")
        conn.rollback()
        assert conn.execute("SELECT COUNT(*) FROM t").scalar() == 200
        assert conn.execute("SELECT id FROM t WHERE id = 137").scalar() == 137


class TestTransactionProperty:
    @given(
        st.lists(
            st.one_of(
                st.tuples(st.just("insert"), st.integers(100, 140), st.integers(-5, 5)),
                st.tuples(st.just("delete"), st.integers(0, 30), st.integers(0, 0)),
                st.tuples(st.just("update"), st.integers(0, 30), st.integers(-5, 5)),
            ),
            max_size=25,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_rollback_is_always_a_no_op(self, operations):
        db = Database("prop")
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, x INTEGER)")
        db.load_rows("t", ["id", "x"], [(i, i) for i in range(30)])
        before = db.query("SELECT * FROM t ORDER BY id").rows
        db.begin()
        inserted: set[int] = set()
        for kind, key, value in operations:
            try:
                if kind == "insert" and key not in inserted:
                    db.execute("INSERT INTO t VALUES (?, ?)", [key, value])
                    inserted.add(key)
                elif kind == "delete":
                    db.execute("DELETE FROM t WHERE id = ?", [key])
                elif kind == "update":
                    db.execute("UPDATE t SET x = x + ? WHERE id = ?", [value, key])
            except Exception:
                pass  # duplicate PKs etc. — irrelevant to the invariant
        db.rollback()
        assert db.query("SELECT * FROM t ORDER BY id").rows == before
