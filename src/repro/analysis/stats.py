"""Summary statistics (Lilja-style, per the thesis's methodology §6.2/§6.4).

The thesis reports means, coefficients of variation, relative change, and
speedup, with sample sizes justified by the central limit theorem (>= 30
samples).  These helpers compute exactly those quantities.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def mean(samples: list[float]) -> float:
    if not samples:
        raise ValueError("mean of an empty sample")
    return sum(samples) / len(samples)


def stdev(samples: list[float]) -> float:
    """Sample standard deviation (n-1 denominator); 0 for n < 2."""
    n = len(samples)
    if n == 0:
        raise ValueError("stdev of an empty sample")
    if n < 2:
        return 0.0
    mu = mean(samples)
    return math.sqrt(sum((x - mu) ** 2 for x in samples) / (n - 1))


def coefficient_of_variation(samples: list[float]) -> float:
    """COV = stdev / mean — the thesis's variance measure in Table 4."""
    mu = mean(samples)
    if mu == 0:
        return 0.0
    return stdev(samples) / mu


def geometric_mean(samples: list[float]) -> float:
    if not samples:
        raise ValueError("geometric mean of an empty sample")
    if any(x <= 0 for x in samples):
        raise ValueError("geometric mean requires positive samples")
    return math.exp(sum(math.log(x) for x in samples) / len(samples))


def confidence_interval(samples: list[float], confidence: float = 0.95) -> tuple[float, float]:
    """Normal-approximation CI for the mean (valid at the thesis's n >= 30)."""
    if confidence not in (0.90, 0.95, 0.99):
        raise ValueError("supported confidence levels: 0.90, 0.95, 0.99")
    z = {0.90: 1.645, 0.95: 1.960, 0.99: 2.576}[confidence]
    mu = mean(samples)
    half = z * stdev(samples) / math.sqrt(len(samples))
    return (mu - half, mu + half)


def speedup(baseline: float, optimized: float) -> float:
    """baseline / optimized — Figure 12 / Table 5 convention."""
    if optimized <= 0:
        raise ValueError(f"optimized time must be positive, got {optimized}")
    return baseline / optimized


def relative_change(baseline: float, optimized: float) -> float:
    """(baseline - optimized) / optimized, as a percentage.

    The thesis's "Relative Change" rows (e.g. 96.05% for HPL caching)
    equal ``(speedup - 1) * 100``.
    """
    if optimized <= 0:
        raise ValueError(f"optimized time must be positive, got {optimized}")
    return (baseline - optimized) / optimized * 100.0


@dataclass(frozen=True)
class SampleSummary:
    """Mean/stdev/COV/min/max/n for one series."""

    n: int
    mean: float
    stdev: float
    cov: float
    minimum: float
    maximum: float


def summarize(samples: list[float]) -> SampleSummary:
    return SampleSummary(
        n=len(samples),
        mean=mean(samples),
        stdev=stdev(samples),
        cov=coefficient_of_variation(samples),
        minimum=min(samples),
        maximum=max(samples),
    )
