"""Tests for the DB-API facade (the JDBC analog)."""

import pytest

from repro.minidb import Database, ProgrammingError, connect


@pytest.fixture()
def conn():
    connection = connect("t")
    connection.execute("CREATE TABLE x (a INTEGER PRIMARY KEY, b TEXT)")
    connection.execute("INSERT INTO x VALUES (1, 'one'), (2, 'two'), (3, 'three')")
    return connection


class TestCursor:
    def test_description_set_for_select(self, conn):
        cursor = conn.execute("SELECT a, b FROM x")
        assert [d[0] for d in cursor.description] == ["a", "b"]
        assert cursor.rowcount == 3

    def test_description_none_for_dml(self, conn):
        cursor = conn.execute("DELETE FROM x WHERE a = 1")
        assert cursor.description is None
        assert cursor.rowcount == 1

    def test_fetchone_exhausts(self, conn):
        cursor = conn.execute("SELECT a FROM x ORDER BY a")
        assert cursor.fetchone() == (1,)
        assert cursor.fetchone() == (2,)
        assert cursor.fetchone() == (3,)
        assert cursor.fetchone() is None

    def test_fetchmany(self, conn):
        cursor = conn.execute("SELECT a FROM x ORDER BY a")
        assert cursor.fetchmany(2) == [(1,), (2,)]
        assert cursor.fetchmany(2) == [(3,)]
        assert cursor.fetchmany(2) == []

    def test_fetchall_after_fetchone(self, conn):
        cursor = conn.execute("SELECT a FROM x ORDER BY a")
        cursor.fetchone()
        assert cursor.fetchall() == [(2,), (3,)]

    def test_iteration(self, conn):
        cursor = conn.execute("SELECT a FROM x ORDER BY a")
        assert [row[0] for row in cursor] == [1, 2, 3]

    def test_scalar(self, conn):
        assert conn.execute("SELECT COUNT(*) FROM x").scalar() == 3
        assert conn.execute("SELECT a FROM x WHERE a = 99").scalar() is None

    def test_executemany(self, conn):
        cursor = conn.cursor()
        cursor.executemany("INSERT INTO x VALUES (?, ?)", [(4, "four"), (5, "five")])
        assert cursor.rowcount == 2
        assert conn.execute("SELECT COUNT(*) FROM x").scalar() == 5

    def test_closed_cursor_rejects(self, conn):
        cursor = conn.cursor()
        cursor.close()
        with pytest.raises(ProgrammingError):
            cursor.execute("SELECT 1 FROM x")

    def test_context_managers(self):
        with connect("t2") as connection:
            with connection.cursor() as cursor:
                cursor.execute("CREATE TABLE y (a INTEGER)")
        with pytest.raises(ProgrammingError):
            connection.cursor()


class TestConnect:
    def test_connect_wraps_existing_database(self):
        db = Database("shared")
        db.execute("CREATE TABLE t (a INTEGER)")
        conn1 = connect(db)
        conn2 = connect(db)
        conn1.execute("INSERT INTO t VALUES (1)")
        assert conn2.execute("SELECT COUNT(*) FROM t").scalar() == 1

    def test_connect_creates_fresh(self):
        conn = connect()
        conn.execute("CREATE TABLE t (a INTEGER)")
        assert conn.database.table_names() == ["t"]
