"""End-to-end integration scenarios across the whole stack."""

import pytest

from repro.core import (
    ExecutionQuery,
    ExecutionQueryPanel,
    PPerfGridClient,
    PPerfGridSite,
    SiteConfig,
)
from repro.core.semantic import PerformanceResult
from repro.datastores import XmlStore, generate_hpl
from repro.gsi import CertificateAuthority, make_verifier, signature_header_provider
from repro.mapping import HplRdbmsWrapper, HplXmlWrapper
from repro.ogsi import GridEnvironment, GridServiceHandle, PullNotificationSink
from repro.simnet.clock import VirtualClock
from repro.uddi import UddiClient, UddiRegistryServer


class TestFigure3Workflow:
    """The full component-interaction sequence of thesis Figure 3."""

    def test_full_walkthrough(self, fresh_grid):
        grid = fresh_grid
        # 1a/1b: client logs into registry, gets Application factory handles.
        orgs = grid.client.discover_organizations("%")
        services = orgs[0].services()
        hpl_service = next(s for s in services if s.name == "HPL")
        # 2a-2c: bind to factory, CreateService, get instance handle.
        app = grid.client.bind(hpl_service)
        assert GridServiceHandle.is_valid(app.gsh)
        # 3a-3i: query Application for Executions -> Execution GSHs.
        params = app.exec_query_params()
        value = params["numprocs"][0]
        executions = app.query_executions("numprocs", value)
        assert executions
        # 4a-4f: bind to Execution instances, query Performance Results.
        for execution in executions:
            results = execution.get_pr("gflops", ["/Run"])
            assert len(results) == 1
            assert isinstance(results[0], PerformanceResult)

    def test_transport_byte_accounting_is_live(self, fresh_grid):
        recorder = fresh_grid.environment.recorder
        before = recorder.bytes_total
        app = fresh_grid.bind("HPL")
        app.num_executions()
        assert recorder.bytes_total > before


class TestHeterogeneousUniformView:
    """Same content behind different formats gives identical answers."""

    def test_rdbms_and_xml_sites_agree_over_the_wire(self):
        env = GridEnvironment()
        registry = env.create_container("reg:1")
        uddi_gsh = registry.deploy("services/uddi", UddiRegistryServer())
        uddi = UddiClient.connect(env, uddi_gsh)
        org = uddi.publish_organization("Org", "", "")

        hpl = generate_hpl(seed=21, num_executions=10)
        site_a = PPerfGridSite(
            env, SiteConfig("a:1", "HPL-RDBMS"), HplRdbmsWrapper(hpl.to_database())
        )
        site_b = PPerfGridSite(
            env, SiteConfig("b:1", "HPL-XML"), HplXmlWrapper(XmlStore(hpl.to_xml()))
        )
        site_a.publish(uddi, org)
        site_b.publish(uddi, org)

        client = PPerfGridClient(env, uddi_gsh.url())
        bindings = {}
        for service in client.discover_organizations()[0].services():
            bindings[service.name] = client.bind(service)

        a, b = bindings["HPL-RDBMS"], bindings["HPL-XML"]
        assert a.num_executions() == b.num_executions()
        ea = a.all_executions()
        eb = b.all_executions()
        for xa, xb in zip(ea[:5], eb[:5]):
            ra = xa.get_pr("gflops", ["/Run"])[0]
            rb = xb.get_pr("gflops", ["/Run"])[0]
            assert ra.value == rb.value

    def test_cross_site_query_panel(self, fresh_grid):
        hpl = fresh_grid.bind("HPL")
        smg = fresh_grid.bind("SMG98")
        panel = ExecutionQueryPanel(
            executions=hpl.all_executions()[:2] + smg.all_executions()[:1]
        )
        # Metric known to one site is unknown to the other: the wrapper
        # faults for HPL, so query each metric only where it exists.
        panel.add_query(ExecutionQuery("gflops", ["/Run"], result_type="hpl"))
        results = panel.run_queries()
        hpl_hits = [prs for prs in results.values() if prs]
        assert len(hpl_hits) == 0 or all(
            p.metric == "gflops" for prs in hpl_hits for p in prs
        )


class TestSecureFederation:
    def test_mixed_secured_and_open_sites(self):
        clock = VirtualClock()
        env = GridEnvironment(clock=clock)
        ca = CertificateAuthority()
        hpl = generate_hpl(seed=3, num_executions=4)
        open_site = PPerfGridSite(
            env, SiteConfig("open:1", "HPL"), HplRdbmsWrapper(hpl.to_database())
        )
        secure_site = PPerfGridSite(
            env, SiteConfig("sec:1", "HPL"), HplRdbmsWrapper(hpl.to_database())
        )
        env.container_for("sec:1").verifier = make_verifier(ca, clock)

        client = PPerfGridClient(env)
        open_app = client.bind(open_site.factory_url, "HPL")
        assert open_app.num_executions() == 4

        from repro.soap import SoapFault

        with pytest.raises(SoapFault):
            client.bind(secure_site.factory_url, "HPL")

        user = ca.issue("/CN=user")
        headers = signature_header_provider(user)
        from repro.core.semantic import APPLICATION_PORTTYPE
        from repro.ogsi.porttypes import FACTORY_PORTTYPE

        factory = env.stub_for_handle(secure_site.factory_url, FACTORY_PORTTYPE, headers)
        gsh = factory.CreateService([])
        app_stub = env.stub_for_handle(gsh, APPLICATION_PORTTYPE, headers)
        assert app_stub.getNumExecs() == 4


class TestStreamingUpdateScenario:
    def test_pull_subscriber_sees_updates_and_fresh_data(self, fresh_grid):
        env = fresh_grid.environment
        app = fresh_grid.bind("HPL")
        execution = app.all_executions()[0]
        exec_id = execution.info()["runid"]

        sink = PullNotificationSink()
        client_container = env.create_container("client:1")
        sink_gsh = client_container.deploy("services/sink", sink)
        execution.subscribe("data-update", sink_gsh.url())

        old_value = execution.get_pr("gflops", ["/Run"])[0].value
        fresh_grid.hpl_site.wrapper.conn.execute(
            "UPDATE hpl_runs SET gflops = gflops + 1 WHERE runid = ?", [int(exec_id)]
        )
        container = env.container_for("hpl.pdx.edu:8080")
        for path in container.service_paths():
            service = container.service_at(path)
            if getattr(service, "exec_id", None) == exec_id:
                service.announce_update("recalibrated")
        messages = sink.poll()
        assert messages and messages[0][0] == "data-update"
        assert execution.get_pr("gflops", ["/Run"])[0].value == pytest.approx(
            old_value + 1
        )


class TestLifetimeIntegration:
    def test_expired_instances_swept_and_manager_recovers(self):
        clock = VirtualClock()
        env = GridEnvironment(clock=clock)
        site = PPerfGridSite(
            env,
            SiteConfig("s:1", "HPL", instance_lifetime=60.0),
            HplRdbmsWrapper(generate_hpl(num_executions=3).to_database()),
        )
        client = PPerfGridClient(env)
        app = client.bind(site.factory_url, "HPL")
        first = app.all_executions()
        clock.advance(120.0)
        swept = env.sweep_expired()
        assert swept >= len(first) + 1  # executions + the app instance
        # Rebind and requery: Manager detects dead instances, recreates.
        app2 = client.bind(site.factory_url, "HPL")
        second = app2.all_executions()
        assert len(second) == 3
        assert {e.gsh for e in second}.isdisjoint({e.gsh for e in first})
        assert second[0].get_pr("gflops", ["/Run"])
