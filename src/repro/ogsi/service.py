"""Grid service base class.

A :class:`GridServiceBase` owns a GSH, a lifetime, and a
:class:`~repro.ogsi.servicedata.ServiceDataSet`, and implements the three
GridService operations of Table 3.  Concrete services define additional
PortTypes and implement their operations as plain methods with matching
names; the container dispatches by name after validating against the
declared PortType.
"""

from __future__ import annotations

import math
from enum import Enum
from typing import TYPE_CHECKING

from repro.ogsi.gsh import GridServiceHandle
from repro.ogsi.porttypes import GRID_SERVICE_PORTTYPE
from repro.ogsi.servicedata import ServiceDataSet
from repro.wsdl.porttype import PortType

if TYPE_CHECKING:  # pragma: no cover
    from repro.ogsi.container import ServiceContainer


class ServiceState(Enum):
    ACTIVE = "active"
    DESTROYED = "destroyed"


class GridServiceBase:
    """Base for every deployed service and service instance.

    Subclasses set :attr:`porttype` (their primary PortType; the container
    additionally accepts GridService operations for any service).  After
    deployment the container assigns :attr:`gsh`, :attr:`container`, and
    seeds the introspection SDEs.
    """

    #: the service-specific PortType; GridService ops are always available
    porttype: PortType = GRID_SERVICE_PORTTYPE

    def __init__(self) -> None:
        self.gsh: GridServiceHandle | None = None
        self.container: "ServiceContainer | None" = None
        self.state = ServiceState.ACTIVE
        self.service_data = ServiceDataSet()
        #: absolute clock time after which the instance may be reclaimed
        self.termination_time: float = math.inf
        self.created_at: float = 0.0

    # ------------------------------------------------------- container API
    def on_deployed(self, container: "ServiceContainer", gsh: GridServiceHandle) -> None:
        """Called by the container once the service has an address."""
        self.container = container
        self.gsh = gsh
        self.created_at = container.clock.now()
        self.service_data.set("handle", gsh.url())
        self.service_data.set("reference", gsh.endpoint_url())
        self.service_data.set("primaryKey", gsh.path)
        interfaces = [self.porttype.name] + [b.name for b in self.porttype.extends]
        if "GridService" not in interfaces:
            interfaces.append("GridService")
        self.service_data.set("interfaces", interfaces)
        self.service_data.set("createdAt", repr(self.created_at))
        # The service's WSDL document, published as an SDE so clients can
        # bind dynamically (the Figure 1 "download WSDL, generate stubs"
        # step) instead of relying on compile-time PortType knowledge.
        from repro.wsdl.document import generate_wsdl

        self.service_data.set("wsdl", generate_wsdl(self.porttype, gsh.endpoint_url()))

    def on_destroyed(self) -> None:
        """Hook for subclasses to release resources; default does nothing."""

    def require_active(self) -> None:
        if self.state is not ServiceState.ACTIVE:
            raise RuntimeError(f"service {self.gsh} has been destroyed")

    def is_expired(self, now: float) -> bool:
        return now >= self.termination_time

    def sweep(self, now: float) -> bool:
        """Destroy this instance if it is (still) expired at *now*.

        Called by the container's lifetime sweep *under the service's
        dispatch gate*; the re-check matters because a dispatch that ran
        while the sweep waited (e.g. a cursor ``next``) may have renewed
        the termination time, and renewals win over sweeps.
        """
        if self.state is not ServiceState.ACTIVE or not self.is_expired(now):
            return False
        self.Destroy()
        return True

    # -------------------------------------------- GridService operations
    def FindServiceData(self, queryExpression: str) -> str:
        """Query this service's SDEs (name or ``xpath:`` dialect)."""
        self.require_active()
        return self.service_data.query(queryExpression)

    def SetTerminationTime(self, terminationTime: float) -> float:
        """Set the absolute termination time; returns the effective value.

        A non-positive value means "no expiry" (stored as +inf).
        """
        self.require_active()
        self.termination_time = math.inf if terminationTime <= 0 else float(terminationTime)
        return 0.0 if math.isinf(self.termination_time) else self.termination_time

    def Destroy(self) -> None:
        """Terminate this instance and detach it from its container."""
        self.require_active()
        self.state = ServiceState.DESTROYED
        self.on_destroyed()
        if self.container is not None and self.gsh is not None:
            self.container.remove_service(self.gsh)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} gsh={self.gsh} state={self.state.value}>"
