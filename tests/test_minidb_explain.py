"""Tests for EXPLAIN: plan descriptions must match planner decisions."""

import pytest

from repro.minidb import Database, ProgrammingError


@pytest.fixture()
def db():
    database = Database("x")
    database.execute(
        "CREATE TABLE runs (runid INTEGER PRIMARY KEY, machine TEXT, numprocs INTEGER)"
    )
    database.execute("CREATE TABLE procs (pid INTEGER PRIMARY KEY, runid INTEGER)")
    database.execute("CREATE INDEX idx_machine ON runs (machine)")
    return database


class TestExplain:
    def test_pk_lookup_uses_index(self, db):
        plan = db.explain("SELECT * FROM runs WHERE runid = 5")
        assert "IndexLookup runs" in plan
        assert "runid = 5" in plan
        assert "Filter" not in plan  # single conjunct fully consumed

    def test_secondary_index_chosen(self, db):
        plan = db.explain("SELECT * FROM runs WHERE machine = ?", ["alpha"])
        assert "USING idx_machine" in plan

    def test_unindexed_predicate_scans(self, db):
        plan = db.explain("SELECT * FROM runs WHERE numprocs = 4")
        assert plan.startswith("SeqScan runs")
        assert "Filter" in plan

    def test_residual_filter_after_index(self, db):
        plan = db.explain("SELECT * FROM runs WHERE runid = 5 AND numprocs = 4")
        assert "IndexLookup" in plan and "Filter" in plan

    def test_inequality_cannot_use_index(self, db):
        plan = db.explain("SELECT * FROM runs WHERE runid > 5")
        assert "SeqScan" in plan

    def test_or_disables_index(self, db):
        plan = db.explain("SELECT * FROM runs WHERE runid = 5 OR numprocs = 4")
        assert "SeqScan" in plan

    def test_equi_join_uses_hash_join(self, db):
        plan = db.explain(
            "SELECT * FROM runs r JOIN procs p ON r.runid = p.runid"
        )
        assert "HashJoin (Inner) procs" in plan

    def test_left_join_annotated(self, db):
        plan = db.explain(
            "SELECT * FROM runs r LEFT JOIN procs p ON r.runid = p.runid"
        )
        assert "HashJoin (Left)" in plan

    def test_non_equi_join_nested_loop(self, db):
        plan = db.explain("SELECT * FROM runs r JOIN procs p ON r.runid < p.runid")
        assert "NestedLoopJoin" in plan

    def test_aggregate_sort_limit_stages(self, db):
        plan = db.explain(
            "SELECT machine, COUNT(*) FROM runs GROUP BY machine "
            "HAVING COUNT(*) > 1 ORDER BY machine LIMIT 3 OFFSET 1"
        )
        for stage in ("Aggregate", "Having", "Sort", "Limit 3 Offset 1"):
            assert stage in plan

    def test_distinct_stage(self, db):
        assert "Distinct" in db.explain("SELECT DISTINCT machine FROM runs")

    def test_explain_rejects_non_select(self, db):
        with pytest.raises(ProgrammingError):
            db.explain("DELETE FROM runs")

    def test_explain_matches_execution_for_smg98_query(self, smg98_db):
        # The Table 4 SMG98 query: no execid index (by design), hash joins.
        sql = (
            "SELECT i.start_ts, i.end_ts FROM intervals i "
            "JOIN functions f ON i.funcid = f.funcid "
            "WHERE i.execid = 1 AND f.name = 'MPI_Irecv'"
        )
        plan = smg98_db.explain(sql)
        assert "SeqScan intervals" in plan
        assert "HashJoin" in plan
        smg98_db.query(sql)  # and it actually runs
