"""ASCII charts for experiment reports (the Figure 12 renderer)."""

from __future__ import annotations


def ascii_line_chart(
    x_values: list[float | int],
    series: dict[str, list[float]],
    height: int = 16,
    width: int = 70,
    title: str = "",
    y_label: str = "",
) -> str:
    """Plot one or more series against shared x positions.

    X positions are spread evenly (category axis, like the thesis's
    Figure 12 which uses the execution counts 2..124 as categories).
    Series are drawn with distinct glyphs; collisions show the later
    series' glyph.
    """
    if not x_values:
        raise ValueError("no x values")
    glyphs = "o*x+#@"
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ValueError(f"series {name!r} has {len(ys)} points for {len(x_values)} x values")
    all_y = [y for ys in series.values() for y in ys]
    y_max = max(all_y) if all_y else 1.0
    y_min = 0.0
    span = (y_max - y_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    n = len(x_values)
    xcols = [int(round(i * (width - 1) / max(1, n - 1))) for i in range(n)]
    for si, (name, ys) in enumerate(series.items()):
        glyph = glyphs[si % len(glyphs)]
        for i, y in enumerate(ys):
            row = height - 1 - int(round((y - y_min) / span * (height - 1)))
            grid[row][xcols[i]] = glyph
    lines: list[str] = []
    if title:
        lines.append(title)
    label = (y_label + " ") if y_label else ""
    for r, row in enumerate(grid):
        y_at_row = y_max - (r / (height - 1)) * span if height > 1 else y_max
        prefix = f"{label}{y_at_row:>10.1f} |" if r % 4 == 0 else f"{'':>{len(label) + 10}} |"
        lines.append(prefix + "".join(row))
    lines.append(" " * (len(label) + 11) + "+" + "-" * width)
    # X tick labels under their columns.
    tick_line = [" "] * (width + 1)
    for i, x in enumerate(x_values):
        text = str(x)
        col = xcols[i]
        start = min(max(0, col - len(text) // 2), width - len(text))
        for j, ch in enumerate(text):
            tick_line[start + j] = ch
    lines.append(" " * (len(label) + 12) + "".join(tick_line))
    legend = "   ".join(
        f"{glyphs[i % len(glyphs)]} = {name}" for i, name in enumerate(series)
    )
    lines.append(" " * (len(label) + 12) + legend)
    return "\n".join(lines)
