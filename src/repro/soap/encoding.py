"""Typed value encoding (SOAP section-5 style, simplified).

Supported wire types and their Python mappings:

==================  ==================
XSD / SOAP-ENC      Python
==================  ==================
``xsd:string``      ``str``
``xsd:int``         ``int``
``xsd:long``        ``int``
``xsd:double``      ``float``
``xsd:boolean``     ``bool``
``xsd:anyType``     ``None`` (nil only)
``enc:Array``       ``list`` (homogeneous)
``tns:struct``      ``dict[str, value]``
==================  ==================

Values carry an ``xsi:type`` attribute so the decoder is self-describing,
mirroring Apache Axis's default RPC/encoded style.
"""

from __future__ import annotations

from enum import Enum

from repro.xmlkit import Element, QName

XSD_NS = "http://www.w3.org/2001/XMLSchema"
XSI_NS = "http://www.w3.org/2001/XMLSchema-instance"
ENC_NS = "http://schemas.xmlsoap.org/soap/encoding/"

_XSI_TYPE = QName(XSI_NS, "type")
_XSI_NIL = QName(XSI_NS, "nil")
_ARRAY_TYPE_ATTR = QName(ENC_NS, "arrayType")


class SoapEncodingError(ValueError):
    """Raised when a value cannot be encoded or decoded."""


class XsdType(str, Enum):
    """Wire-level type names used in ``xsi:type`` attributes."""

    STRING = "xsd:string"
    INT = "xsd:int"
    LONG = "xsd:long"
    DOUBLE = "xsd:double"
    BOOLEAN = "xsd:boolean"
    ANY = "xsd:anyType"
    ARRAY = "enc:Array"
    STRUCT = "tns:struct"


def xsd_type_for(value: object) -> XsdType:
    """Infer the wire type for a Python value."""
    if value is None:
        return XsdType.ANY
    if isinstance(value, bool):  # bool before int: bool is an int subclass
        return XsdType.BOOLEAN
    if isinstance(value, int):
        return XsdType.INT if -(2**31) <= value < 2**31 else XsdType.LONG
    if isinstance(value, float):
        return XsdType.DOUBLE
    if isinstance(value, str):
        return XsdType.STRING
    if isinstance(value, (list, tuple)):
        return XsdType.ARRAY
    if isinstance(value, dict):
        return XsdType.STRUCT
    raise SoapEncodingError(f"cannot encode value of type {type(value).__name__}")


def python_type_for(wire: str) -> type | None:
    """Python type for a wire type string (``None`` for nil/any)."""
    mapping: dict[str, type | None] = {
        XsdType.STRING.value: str,
        XsdType.INT.value: int,
        XsdType.LONG.value: int,
        XsdType.DOUBLE.value: float,
        XsdType.BOOLEAN.value: bool,
        XsdType.ANY.value: None,
        XsdType.ARRAY.value: list,
        XsdType.STRUCT.value: dict,
    }
    if wire not in mapping:
        raise SoapEncodingError(f"unknown wire type {wire!r}")
    return mapping[wire]


def encode_value(name: str, value: object) -> Element:
    """Encode a Python value as an element named *name* with ``xsi:type``."""
    el = Element(QName("", name))
    wire = xsd_type_for(value)
    el.attrs[_XSI_TYPE] = wire.value
    if value is None:
        el.attrs[_XSI_NIL] = "true"
        return el
    if wire is XsdType.BOOLEAN:
        el.children.append("true" if value else "false")
    elif wire in (XsdType.INT, XsdType.LONG):
        el.children.append(str(value))
    elif wire is XsdType.DOUBLE:
        el.children.append(repr(float(value)))
    elif wire is XsdType.STRING:
        el.children.append(str(value))
    elif wire is XsdType.ARRAY:
        items = list(value)  # type: ignore[arg-type]
        el.attrs[_ARRAY_TYPE_ATTR] = f"{_item_wire_type(items)}[{len(items)}]"
        for item in items:
            el.children.append(encode_value("item", item))
    elif wire is XsdType.STRUCT:
        for key, item in value.items():  # type: ignore[union-attr]
            if not isinstance(key, str) or not key:
                raise SoapEncodingError("struct keys must be non-empty strings")
            el.children.append(encode_value(key, item))
    return el


def _item_wire_type(items: list[object]) -> str:
    """Element type for an array's ``arrayType`` attribute."""
    kinds = {xsd_type_for(item) for item in items if item is not None}
    if len(kinds) == 1:
        return next(iter(kinds)).value
    return XsdType.ANY.value


def decode_value(el: Element) -> object:
    """Decode an element produced by :func:`encode_value`."""
    nil = el.attrs.get(_XSI_NIL)
    if nil in ("true", "1"):
        return None
    wire = el.attrs.get(_XSI_TYPE)
    if wire is None:
        raise SoapEncodingError(f"element <{el.tag.local}> is missing xsi:type")
    text = el.text()
    try:
        if wire == XsdType.BOOLEAN.value:
            if text not in ("true", "false", "1", "0"):
                raise SoapEncodingError(f"bad boolean literal {text!r}")
            return text in ("true", "1")
        if wire in (XsdType.INT.value, XsdType.LONG.value):
            return int(text)
        if wire == XsdType.DOUBLE.value:
            return float(text)
        if wire == XsdType.STRING.value:
            return text
        if wire == XsdType.ARRAY.value:
            return [decode_value(c) for c in el.iter_elements()]
        if wire == XsdType.STRUCT.value:
            out: dict[str, object] = {}
            for child in el.iter_elements():
                out[child.tag.local] = decode_value(child)
            return out
        if wire == XsdType.ANY.value:
            return None
    except ValueError as exc:
        raise SoapEncodingError(f"bad {wire} literal {text!r}") from exc
    raise SoapEncodingError(f"unknown wire type {wire!r}")
