"""Service container and grid environment (the Axis/Tomcat analog).

The container is the server half of the Architecture Adapter pattern:
its ingress takes ``(path, request-bytes)``, parses the SOAP envelope,
validates the operation against the target service's PortType, invokes
the native method, and serializes the result (or a fault) back to bytes.

Dispatch is serialized **per service**, not per container: each deployed
path gets its own :class:`~repro.ogsi.dispatch.ServiceGate`, so requests
to different services proceed concurrently while one stateful instance
still sees one request at a time.  The ingress runs under an
:class:`~repro.ogsi.dispatch.AdmissionController` — a bounded request
queue with per-client fair queueing that sheds excess load with a
``Server``-role busy fault instead of convoying.  Lifetime sweeps take
each victim's gate (and re-check expiry under it), so a sweep can never
destroy a service mid-dispatch.

A :class:`GridEnvironment` groups containers, wires them to a shared
transport/clock/reactor, and builds client stubs — the whole "grid" of
one PPerfGrid session lives in one environment object.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.ogsi.dispatch import (
    AdmissionController,
    BusyFault,
    DispatchCore,
    dispatch_frame,
    extract_client_id,
    in_dispatch,
)
from repro.ogsi.gsh import GridServiceHandle, GshError
from repro.ogsi.porttypes import GRID_SERVICE_PORTTYPE
from repro.ogsi.service import GridServiceBase, ServiceState
from repro.simnet.clock import Clock, RealClock
from repro.simnet.host import SimHost
from repro.simnet.metrics import Recorder
from repro.simnet.reactor import Reactor, RepeatingTask
from repro.simnet.transport import LoopbackTransport, Transport
from repro.soap.faults import SoapFault, fault_from_exception
from repro.soap.rpc import decode_request, encode_fault, encode_response
from repro.wsdl.porttype import Operation, PortType
from repro.wsdl.stubgen import ClientStub, make_stub
from repro.xmlkit import Element

#: optional security check: (headers, request_bytes) -> None or raise
SecurityVerifier = Callable[[list[Element], bytes], None]


class ContainerError(RuntimeError):
    """Deployment/routing errors inside a container."""


class ServiceContainer:
    """Hosts Grid services under one authority (one "host:port").

    ``max_inflight``/``max_queue_depth`` configure admission control
    (both default to unbounded: no queueing, no shedding — existing
    single-tenant deployments behave as before, minus the container-wide
    serialization).  ``serialize_dispatch=True`` restores the legacy
    whole-container lock; it exists as the benchmark baseline and as an
    escape hatch, not as a recommended mode.
    """

    def __init__(
        self,
        authority: str,
        environment: "GridEnvironment",
        host: SimHost | None = None,
        max_inflight: int | None = None,
        max_queue_depth: int | None = None,
        serialize_dispatch: bool = False,
    ) -> None:
        self.authority = authority
        self.environment = environment
        self.host = host
        self._services: dict[str, GridServiceBase] = {}
        self._instance_counters: dict[str, int] = {}
        #: guards the service/counter maps only — never held across a
        #: service method call or any SOAP work
        self._services_lock = threading.Lock()
        self._core = DispatchCore(serialize_all=serialize_dispatch)
        self.admission = AdmissionController(max_inflight, max_queue_depth)
        self.verifier: SecurityVerifier | None = None
        # Ingress accounting: *handled* requests reached a service method;
        # *rejected* ones never routed (malformed envelope, unknown path/
        # operation, bad arity, failed verification); *shed* ones were
        # refused by admission control.  Only the sum is "traffic".
        self.requests_handled = 0
        self.requests_rejected = 0
        self.requests_shed = 0
        self._counter_lock = threading.Lock()

    @property
    def clock(self) -> Clock:
        return self.environment.clock

    # ---------------------------------------------------------- deployment
    def deploy(self, path: str, service: GridServiceBase) -> GridServiceHandle:
        """Deploy a persistent service at *path*; returns its GSH."""
        with self._services_lock:
            if path in self._services:
                raise ContainerError(
                    f"path {path!r} already deployed on {self.authority}"
                )
            gsh = GridServiceHandle(self.authority, path)
            self._services[path] = service
        service.on_deployed(self, gsh)
        return gsh

    def deploy_instance(self, factory_path: str, instance: GridServiceBase) -> GridServiceHandle:
        """Deploy a transient instance under a factory's path."""
        with self._services_lock:
            count = self._instance_counters.get(factory_path, 0) + 1
            self._instance_counters[factory_path] = count
        path = f"{factory_path}/instances/{count}"
        return self.deploy(path, instance)

    def deploy_monitor(self, path: str = "services/container-monitor"):
        """Deploy a :class:`~repro.ogsi.monitor.ContainerMonitorService`
        publishing this container's ingress/admission counters as SDEs."""
        from repro.ogsi.monitor import ContainerMonitorService

        return self.deploy(path, ContainerMonitorService(self))

    def remove_service(self, gsh: GridServiceHandle) -> None:
        with self._services_lock:
            self._services.pop(gsh.path, None)
        self._core.discard(gsh.path)

    def has_service(self, gsh: GridServiceHandle) -> bool:
        with self._services_lock:
            service = self._services.get(gsh.path)
        return service is not None and service.state is ServiceState.ACTIVE

    def service_at(self, path: str) -> GridServiceBase | None:
        with self._services_lock:
            return self._services.get(path)

    def service_count(self) -> int:
        with self._services_lock:
            return len(self._services)

    def service_paths(self) -> list[str]:
        with self._services_lock:
            return sorted(self._services)

    def sweep_expired(self) -> int:
        """Destroy instances whose termination time has passed.

        Each victim is destroyed under its own dispatch gate, with the
        expiry re-checked once the gate is held: an in-flight ``next()``
        that renews a cursor's TTL wins over a concurrent sweep, and a
        service mid-dispatch is never destroyed under the caller.
        """
        now = self.clock.now()
        with self._services_lock:
            candidates = [
                (path, svc)
                for path, svc in self._services.items()
                if svc.state is ServiceState.ACTIVE and svc.is_expired(now)
            ]
        swept = 0
        for path, service in candidates:
            gate = self._core.gate_for(path)
            gate.acquire()
            try:
                if service.sweep(now):
                    swept += 1
            finally:
                gate.release()
        return swept

    # ------------------------------------------------------------- ingress
    def handle_request(self, path: str, request: bytes) -> bytes:
        """The container ingress: bytes in, bytes out, faults on errors."""
        if in_dispatch():
            # A nested call from already-admitted work (a service invoking
            # another service mid-request).  Admission applies only at the
            # outermost ingress — re-admitting would deadlock a saturated
            # queue against itself — but the per-service gate still does.
            return self._dispatch(path, request)
        client = extract_client_id(request) or f"thread-{threading.get_ident()}"
        try:
            self.admission.acquire(client)
        except BusyFault as fault:
            with self._counter_lock:
                self.requests_shed += 1
            return encode_fault(fault)
        try:
            return self._dispatch(path, request)
        finally:
            self.admission.release()

    def _dispatch(self, path: str, request: bytes) -> bytes:
        routed = False
        try:
            rpc = decode_request(request)
        except SoapFault as fault:
            self._count_rejected()
            return encode_fault(fault)
        except Exception as exc:
            self._count_rejected()
            return encode_fault(fault_from_exception(exc, caller_error=True))
        try:
            if self.verifier is not None:
                self.verifier(rpc.headers, request)
            with self._services_lock:
                service = self._services.get(path)
            if service is None or service.state is not ServiceState.ACTIVE:
                raise SoapFault("Client", f"no service at {self.authority}/{path}")
            operation = self._find_operation(service, rpc.operation)
            if len(rpc.params) != len(operation.parameters):
                raise SoapFault(
                    "Client",
                    f"{rpc.operation} takes {len(operation.parameters)} "
                    f"argument(s), got {len(rpc.params)}",
                )
            method = getattr(service, rpc.operation, None)
            if method is None:
                raise SoapFault(
                    "Server",
                    f"{type(service).__name__} declares but does not implement "
                    f"{rpc.operation}",
                )
            gate = self._core.gate_for(path)
            with dispatch_frame(gate):
                # Re-check under the gate: a sweep or Destroy may have won
                # the race while this request waited its turn.
                if service.state is not ServiceState.ACTIVE:
                    raise SoapFault(
                        "Client", f"no service at {self.authority}/{path}"
                    )
                routed = True
                with self._counter_lock:
                    self.requests_handled += 1
                result = method(*rpc.params)
                # Encode under the gate too: services may return views of
                # state (cached PR lists) that the next dispatch mutates.
                return encode_response(
                    rpc.namespace,
                    rpc.operation,
                    result,
                    is_void=operation.returns == "void",
                )
        except SoapFault as fault:
            if not routed:
                self._count_rejected()
            return encode_fault(fault)
        except Exception as exc:
            if not routed:
                self._count_rejected()
            return encode_fault(fault_from_exception(exc))

    def _count_rejected(self) -> None:
        with self._counter_lock:
            self.requests_rejected += 1

    def stats(self) -> dict[str, int]:
        """Ingress and admission counters (the container-monitor SDEs)."""
        snapshot = self.admission.snapshot()
        with self._counter_lock:
            snapshot.update(
                requestsHandled=self.requests_handled,
                requestsRejected=self.requests_rejected,
                requestsShed=self.requests_shed,
            )
        snapshot["services"] = self.service_count()
        return snapshot

    @staticmethod
    def _find_operation(service: GridServiceBase, name: str) -> Operation:
        if service.porttype.has_operation(name):
            return service.porttype.operation(name)
        if GRID_SERVICE_PORTTYPE.has_operation(name):
            return GRID_SERVICE_PORTTYPE.operation(name)
        raise SoapFault(
            "Client",
            f"PortType {service.porttype.name!r} has no operation {name!r}",
        )


class GridEnvironment:
    """One grid: shared clock, transport, reactor, a set of containers."""

    def __init__(self, clock: Clock | None = None, recorder: Recorder | None = None) -> None:
        self.clock: Clock = clock or RealClock()
        self.recorder = recorder if recorder is not None else Recorder(self.clock)
        self.transport: Transport = LoopbackTransport(self.recorder)
        self._containers: dict[str, ServiceContainer] = {}
        self._reactor: Reactor | None = None
        self._sweeper: RepeatingTask | None = None

    def create_container(
        self,
        authority: str,
        host: SimHost | None = None,
        max_inflight: int | None = None,
        max_queue_depth: int | None = None,
        serialize_dispatch: bool = False,
    ) -> ServiceContainer:
        if authority in self._containers:
            raise ContainerError(f"a container is already bound at {authority!r}")
        container = ServiceContainer(
            authority,
            self,
            host=host,
            max_inflight=max_inflight,
            max_queue_depth=max_queue_depth,
            serialize_dispatch=serialize_dispatch,
        )
        self._containers[authority] = container
        # The loopback transport routes by authority to the container ingress.
        self.transport.bind(authority, container.handle_request)  # type: ignore[attr-defined]
        return container

    def container_for(self, authority: str) -> ServiceContainer | None:
        return self._containers.get(authority)

    def containers(self) -> list[ServiceContainer]:
        return [self._containers[a] for a in sorted(self._containers)]

    # --------------------------------------------------------------- reactor
    @property
    def reactor(self) -> Reactor:
        """The environment's deferred-work loop (created on first use)."""
        if self._reactor is None:
            self._reactor = Reactor(name="grid-env")
        return self._reactor

    def start_sweeper(self, interval: float) -> RepeatingTask:
        """Run :meth:`sweep_expired` every *interval* seconds on the reactor.

        Replaces any previously started sweeper.  The sweep itself
        serializes with dispatch through the per-service gates, so it is
        safe to run concurrently with live traffic.
        """
        if self._sweeper is not None:
            self._sweeper.cancel()
        self._sweeper = self.reactor.call_every(interval, self.sweep_expired)
        return self._sweeper

    def stop_sweeper(self) -> None:
        if self._sweeper is not None:
            self._sweeper.cancel()
            self._sweeper = None

    def close(self) -> None:
        """Stop the sweeper and the reactor; the environment stays usable
        for synchronous work afterwards."""
        self.stop_sweeper()
        if self._reactor is not None:
            self._reactor.shutdown()
            self._reactor = None

    # ---------------------------------------------------------------- stubs
    def stub_for_handle(
        self,
        handle: str | GridServiceHandle,
        porttype: PortType,
        headers_provider=None,
    ) -> ClientStub:
        """Bind a stub to the service a GSH names (the Figure 1 'bind' step)."""
        gsh = handle if isinstance(handle, GridServiceHandle) else GridServiceHandle.parse(handle)
        container = self._containers.get(gsh.authority)
        if container is None or not container.has_service(gsh):
            raise GshError(f"handle {gsh} does not resolve to a live service")
        return make_stub(porttype, gsh.endpoint_url(), self.transport, headers_provider)

    def stub_for_endpoint(
        self, endpoint_url: str, porttype: PortType, headers_provider=None
    ) -> ClientStub:
        return make_stub(porttype, endpoint_url, self.transport, headers_provider)

    def stub_from_wsdl(
        self, handle: str | GridServiceHandle, headers_provider=None
    ) -> ClientStub:
        """Bind with no compile-time PortType knowledge (Figure 1 flow).

        Fetches the service's published WSDL through the GridService
        PortType (always available), parses it, and builds the stub from
        the parsed interface — the analog of WSDL2Java stub generation.
        """
        from repro.wsdl.document import parse_wsdl
        from repro.xmlkit import parse as parse_xml

        bootstrap = self.stub_for_handle(handle, GRID_SERVICE_PORTTYPE, headers_provider)
        result_xml = bootstrap.FindServiceData("wsdl")
        root = parse_xml(result_xml).root
        sde = root.find("serviceDataElement")
        if sde is None:
            raise GshError(f"service {handle} publishes no WSDL service data")
        value = sde.find("value")
        wsdl_text = value.text() if value is not None else ""
        porttype, endpoint = parse_wsdl(wsdl_text)
        return make_stub(porttype, endpoint, self.transport, headers_provider)

    def sweep_expired(self) -> int:
        """Run lifetime sweeps on every container."""
        return sum(c.sweep_expired() for c in self._containers.values())

    def total_services(self) -> int:
        return sum(c.service_count() for c in self._containers.values())
