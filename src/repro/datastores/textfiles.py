"""Flat ASCII text-file store and its custom parser (the RMA data layer).

The thesis accesses the PRESTA dataset "through a custom parser written
in Java"; :func:`parse_presta_file` is that parser and
:class:`TextFileStore` is the directory-of-files data store the wrapper
queries.  Parsing happens on every query (unless the Semantic Layer's
Performance-Result cache hits) — that is the cost Table 5 shows barely
improving under caching for RMA.
"""

from __future__ import annotations

import os

from repro.datastores.generators.presta import PrestaExecution


class TextStoreError(ValueError):
    """Raised on malformed files or unknown executions."""


def parse_presta_file(path: str) -> PrestaExecution:
    """Parse one ``presta_rma_<id>.txt`` file."""
    header: dict[str, str] = {}
    measurements: list[tuple[str, int, int, float, float]] = []
    saw_columns = False
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, 1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#"):
                body = line[1:].strip()
                if ":" in body:
                    key, _, value = body.partition(":")
                    header[key.strip()] = value.strip()
                continue
            if not saw_columns:
                expected = "op msgsize iters latency_us bandwidth_mbps"
                if line != expected:
                    raise TextStoreError(
                        f"{path}:{lineno}: expected column header {expected!r}"
                    )
                saw_columns = True
                continue
            parts = line.split()
            if len(parts) != 5:
                raise TextStoreError(f"{path}:{lineno}: expected 5 fields, got {len(parts)}")
            try:
                measurements.append(
                    (parts[0], int(parts[1]), int(parts[2]), float(parts[3]), float(parts[4]))
                )
            except ValueError as exc:
                raise TextStoreError(f"{path}:{lineno}: {exc}") from exc
    required = ("execid", "rundate", "numprocs", "tasks_per_node", "network", "start", "end")
    missing = [key for key in required if key not in header]
    if missing:
        raise TextStoreError(f"{path}: missing header field(s) {missing}")
    try:
        return PrestaExecution(
            execid=int(header["execid"]),
            rundate=header["rundate"],
            numprocs=int(header["numprocs"]),
            tasks_per_node=int(header["tasks_per_node"]),
            network=header["network"],
            start_time=float(header["start"]),
            end_time=float(header["end"]),
            measurements=measurements,
        )
    except ValueError as exc:
        raise TextStoreError(f"{path}: bad header value: {exc}") from exc


class TextFileStore:
    """A directory of ``presta_rma_<id>.txt`` files.

    The store scans the directory once for the id -> path map (cheap) but
    re-parses file contents on every :meth:`load` — matching the thesis's
    access pattern where only the Semantic Layer caches results.
    """

    def __init__(self, directory: str) -> None:
        self.directory = str(directory)
        self._paths: dict[int, str] = {}
        self.parse_count = 0
        self.refresh()

    def refresh(self) -> None:
        """Re-scan the directory for execution files."""
        self._paths.clear()
        if not os.path.isdir(self.directory):
            raise TextStoreError(f"no such directory {self.directory!r}")
        for name in sorted(os.listdir(self.directory)):
            if not (name.startswith("presta_rma_") and name.endswith(".txt")):
                continue
            id_text = name[len("presta_rma_") : -len(".txt")]
            try:
                execid = int(id_text)
            except ValueError:
                continue
            self._paths[execid] = os.path.join(self.directory, name)

    def execution_ids(self) -> list[int]:
        return sorted(self._paths)

    def has_execution(self, execid: int) -> bool:
        return execid in self._paths

    def load(self, execid: int) -> PrestaExecution:
        """Parse and return one execution (no caching here by design)."""
        path = self._paths.get(execid)
        if path is None:
            raise TextStoreError(f"no execution {execid} in {self.directory!r}")
        self.parse_count += 1
        return parse_presta_file(path)

    def load_header_only(self, execid: int) -> dict[str, str]:
        """Parse only the ``#`` header of one file (attribute discovery)."""
        path = self._paths.get(execid)
        if path is None:
            raise TextStoreError(f"no execution {execid} in {self.directory!r}")
        header: dict[str, str] = {}
        with open(path, "r", encoding="utf-8") as fh:
            for raw in fh:
                line = raw.strip()
                if not line.startswith("#"):
                    break
                body = line[1:].strip()
                if ":" in body:
                    key, _, value = body.partition(":")
                    header[key.strip()] = value.strip()
        return header
