"""Statistics and report formatting for the experiment harness."""

from repro.analysis.stats import (
    coefficient_of_variation,
    confidence_interval,
    geometric_mean,
    mean,
    relative_change,
    speedup,
    stdev,
    summarize,
)
from repro.analysis.tables import format_table, format_markdown_table
from repro.analysis.charts import ascii_line_chart

__all__ = [
    "ascii_line_chart",
    "coefficient_of_variation",
    "confidence_interval",
    "format_markdown_table",
    "format_table",
    "geometric_mean",
    "mean",
    "relative_change",
    "speedup",
    "stdev",
    "summarize",
]
