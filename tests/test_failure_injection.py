"""Failure-injection tests: corrupted messages, dying services,
misbehaving wrappers, hostile inputs at every boundary."""

import pytest

from repro.core import PPerfGridClient, PPerfGridSite, SiteConfig
from repro.core.execution import ExecutionService
from repro.core.semantic import EXECUTION_PORTTYPE, UNDEFINED_TYPE, PerformanceResult
from repro.datastores import generate_hpl
from repro.experiments.common import build_synthetic_grid
from repro.mapping import HplRdbmsWrapper
from repro.mapping.base import ExecutionWrapper
from repro.mapping.memory import InMemoryExecution, InMemoryWrapper
from repro.ogsi import GridEnvironment, GridServiceHandle
from repro.soap import SoapFault
from repro.soap.rpc import decode_response, encode_request


@pytest.fixture()
def env_site():
    env = GridEnvironment()
    site = PPerfGridSite(
        env,
        SiteConfig("s:1", "HPL"),
        HplRdbmsWrapper(generate_hpl(num_executions=4).to_database()),
    )
    return env, site


class TestCorruptedMessages:
    @pytest.mark.parametrize(
        "payload",
        [
            b"",
            b"garbage",
            b"<?xml version='1.0'?><notsoap/>",
            b"<?xml version='1.0'?><Envelope/>",  # wrong namespace
            "<a>é</a>".encode("utf-16"),  # wrong encoding
        ],
    )
    def test_container_returns_fault_bytes(self, env_site, payload):
        env, site = env_site
        container = env.container_for("s:1")
        response = container.handle_request("services/HPL/ApplicationFactory", payload)
        with pytest.raises(SoapFault) as exc_info:
            decode_response(response)
        assert exc_info.value.code == "Client"

    def test_request_to_nonexistent_path(self, env_site):
        env, site = env_site
        container = env.container_for("s:1")
        request = encode_request("urn:x", "anything", [])
        response = container.handle_request("no/such/path", request)
        with pytest.raises(SoapFault) as exc_info:
            decode_response(response)
        assert "no service at" in exc_info.value.fault_message

    def test_wrong_param_types_fault_not_crash(self, env_site):
        env, site = env_site
        container = env.container_for("s:1")
        # getExecs(int, int) instead of (string, string): the service
        # raises inside the wrapper; the container converts to a fault.
        request = encode_request(
            "http://pperfgrid.cs.pdx.edu/2004", "getNumExecs", []
        )
        path = "services/HPL/ApplicationFactory"
        # Factory doesn't implement getNumExecs: client fault.
        response = container.handle_request(path, request)
        with pytest.raises(SoapFault):
            decode_response(response)


class _ExplodingWrapper(ExecutionWrapper):
    """A wrapper whose data store fails mid-query."""

    def __init__(self, fail_on: str = "get_pr") -> None:
        self.fail_on = fail_on

    def _maybe_fail(self, op: str):
        if op == self.fail_on:
            raise OSError("disk on fire")

    def get_info(self):
        self._maybe_fail("get_info")
        return [("execid", "1")]

    def get_foci(self):
        self._maybe_fail("get_foci")
        return ["/Run"]

    def get_metrics(self):
        self._maybe_fail("get_metrics")
        return ["m"]

    def get_types(self):
        self._maybe_fail("get_types")
        return ["t"]

    def get_time_start_end(self):
        self._maybe_fail("get_time_start_end")
        return (0.0, 1.0)

    def get_pr(self, metric, foci, start, end, result_type):
        self._maybe_fail("get_pr")
        return []


class TestWrapperFailures:
    def test_data_layer_failure_becomes_server_fault(self):
        env = GridEnvironment()
        container = env.create_container("s:1")
        service = ExecutionService(_ExplodingWrapper(), "1")
        gsh = container.deploy("services/exec", service)
        stub = env.stub_for_handle(gsh, EXECUTION_PORTTYPE)
        with pytest.raises(SoapFault) as exc_info:
            stub.getPR("m", ["/Run"], "0", "1", UNDEFINED_TYPE)
        assert exc_info.value.code == "Server"
        assert "disk on fire" in exc_info.value.fault_message

    def test_failed_query_not_cached(self):
        env = GridEnvironment()
        container = env.create_container("s:1")
        wrapper = _ExplodingWrapper()
        service = ExecutionService(wrapper, "1")
        container.deploy("services/exec", service)
        with pytest.raises(OSError):
            service.getPR("m", ["/Run"], "0", "1", UNDEFINED_TYPE)
        # The store recovers; the next query must reach it, not a cache.
        wrapper.fail_on = "never"
        assert service.getPR("m", ["/Run"], "0", "1", UNDEFINED_TYPE) == []
        assert service.cache.stats.hits == 0

    def test_discovery_failure_during_deploy_propagates(self):
        env = GridEnvironment()
        container = env.create_container("s:1")
        with pytest.raises(OSError):
            container.deploy(
                "services/exec", ExecutionService(_ExplodingWrapper("get_metrics"), "1")
            )


class TestServiceDeathMidSession:
    def test_client_sees_fault_after_remote_destroy(self, env_site):
        env, site = env_site
        client = PPerfGridClient(env)
        app = client.bind(site.factory_url, "HPL")
        execution = app.all_executions()[0]
        execution.get_pr("gflops", ["/Run"])
        # The site tears the instance down (lifetime expiry analog).
        gsh = GridServiceHandle.parse(execution.gsh)
        env.container_for("s:1").service_at(gsh.path).Destroy()
        with pytest.raises(SoapFault):
            execution.get_pr("runtimesec", ["/Run"])

    def test_manager_heals_after_container_loses_instances(self, env_site):
        env, site = env_site
        client = PPerfGridClient(env)
        app = client.bind(site.factory_url, "HPL")
        first = app.all_executions()
        for execution in first:
            gsh = GridServiceHandle.parse(execution.gsh)
            env.container_for("s:1").service_at(gsh.path).Destroy()
        second = app.all_executions()
        assert len(second) == len(first)
        assert all(e.get_pr("gflops", ["/Run"]) for e in second)


class TestHostileQueryInputs:
    def test_sql_injection_via_attribute_value_is_inert(self, env_site):
        env, site = env_site
        client = PPerfGridClient(env)
        app = client.bind(site.factory_url, "HPL")
        # The value is bound as a literal; a quote cannot escape it.
        result = app.query_executions("machine", "x'; DROP TABLE hpl_runs; --")
        assert result == []
        assert app.num_executions() == 4  # table intact

    def test_injection_via_numeric_attribute_faults_cleanly(self, env_site):
        env, site = env_site
        client = PPerfGridClient(env)
        app = client.bind(site.factory_url, "HPL")
        with pytest.raises(SoapFault):
            app.query_executions("numprocs", "1 OR 1=1")
        assert app.num_executions() == 4

    def test_pipe_in_query_value_handled(self, env_site):
        env, site = env_site
        client = PPerfGridClient(env)
        app = client.bind(site.factory_url, "HPL")
        assert app.query_executions("machine", "a|b") == []

    def test_huge_foci_list_rejected_by_wrapper(self, env_site):
        env, site = env_site
        client = PPerfGridClient(env)
        app = client.bind(site.factory_url, "HPL")
        execution = app.all_executions()[0]
        foci = [f"/Bogus/{i}" for i in range(50)]
        # Unknown foci are skipped for HPL (returns nothing), not a crash.
        assert execution.get_pr("gflops", foci) == []

    def test_control_characters_in_strings_roundtrip(self, env_site):
        env, site = env_site
        client = PPerfGridClient(env)
        app = client.bind(site.factory_url, "HPL")
        # Query values with XML-hostile characters survive the SOAP trip.
        assert app.query_executions("machine", "<>&\"'") == []


def _result(metric: str, value: float) -> PerformanceResult:
    return PerformanceResult(metric, "/R", "synthetic", 0.0, 1.0, value)


def _stats_grid():
    """A two-member federation: A records ``m``, B does not.

    With healthy statistics the cost model proves B cannot answer a
    query on ``m`` and skips it; with B's ``getStats`` failing, the only
    sound choice is the pre-cost-model global plan for B.
    """
    a = InMemoryWrapper(
        "A", [InMemoryExecution("0", {}, [_result("m", v) for v in (1.0, 2.0, 3.0)])]
    )
    b = InMemoryWrapper("B", [InMemoryExecution("0", {}, [_result("other", 9.0)])])
    grid = build_synthetic_grid({"A": a, "B": b})
    engine = grid.deploy_federation()
    return grid, engine, b


class TestStatsFetchFailures:
    """A failing member ``getStats`` degrades the plan, never the answer."""

    QUERY = "SELECT count(m) GROUP BY app"

    def test_stats_failure_never_skips_the_member(self, monkeypatch):
        grid, engine, b = _stats_grid()

        def broken():
            raise OSError("stats store on fire")

        monkeypatch.setattr(b, "get_stats", broken)
        result = engine.execute(self.QUERY)
        # the answer is still exact: B contributes nothing because the
        # executor probed its metric vocabulary, not because it was
        # skipped on (unavailable) statistics
        assert [(r["app"], r["count(m)"]) for r in result.rows] == [("A", 3.0)]
        plan = result.plan
        assert plan.skipped == ()
        assert plan.stats_degraded is True
        by_app = {member.app: member for member in plan.members}
        assert by_app["B"].cost.stats_missing is True
        # B fell back to the global mode instead of being skipped
        assert by_app["B"].cost.mode == plan.mode

    def test_degraded_plan_not_cached_until_stats_recover(self, monkeypatch):
        grid, engine, b = _stats_grid()

        def broken():
            raise OSError("transient stats failure")

        monkeypatch.setattr(b, "get_stats", broken)
        assert engine.execute(self.QUERY).cached is False
        # degraded plans are never memoized: the retry re-plans
        assert engine.execute(self.QUERY).cached is False
        monkeypatch.undo()
        healed = engine.execute(self.QUERY)
        assert healed.cached is False
        assert healed.plan.stats_degraded is False
        # the failed fetch was not cached either: fresh stats now prove
        # B cannot contribute, so the healthy plan skips it outright
        assert [skipped.app for skipped in healed.plan.skipped] == ["B"]
        assert engine.execute(self.QUERY).cached is True

    def test_stats_failure_visible_in_explain(self, monkeypatch):
        grid, engine, b = _stats_grid()

        def broken():
            raise OSError("stats store down")

        monkeypatch.setattr(b, "get_stats", broken)
        text = "\n".join(engine.explain_plan(self.QUERY))
        assert "stats unavailable" in text
        assert "skipped" not in text


class TestTenantIsolationUnderFailure:
    """A tenant whose member dies mid-stream must release its pool and
    stream-lane slots; other tenants' queries proceed undisturbed."""

    def _grid(self):
        def rows(metric, count, base):
            return [
                PerformanceResult(
                    metric, "/R", "s", float(i), float(i + 1), base + i
                )
                for i in range(count)
            ]

        a = InMemoryWrapper(
            "A", [InMemoryExecution("0", {"numprocs": "2"}, rows("m", 20, 0.0))]
        )
        b = InMemoryWrapper(
            "B", [InMemoryExecution("0", {"numprocs": "4"}, rows("m", 20, 100.0))]
        )
        grid = build_synthetic_grid({"A": a, "B": b})
        engine = grid.deploy_federation()
        engine.stream_threshold_rows = 0  # force the cursor path
        engine.stream_chunk_rows = 5
        return grid, engine

    def test_member_death_mid_stream_releases_slots(self, monkeypatch):
        grid, engine = self._grid()

        def broken(*args, **kwargs):
            raise RuntimeError("member host died")

        monkeypatch.setattr(
            grid.execution_service("B", "0"), "getPRChunked", broken
        )
        with engine.execute(
            "SELECT m", stream=True, tenant="victim"
        ) as streamed:
            rows = list(streamed)
        assert {row["app"] for row in rows} == {"A"}
        assert len(streamed.errors) == 1

        # the dead member's producer drained out of the stream lane:
        # every slot the victim held is back
        stats = engine.scheduler_stats()
        assert stats["streamActive"] == 0
        assert stats["tenants"]["victim"]["streamSlots"] == 0

        # an unrelated tenant's bulk query is unaffected
        result = engine.execute(
            "SELECT m WHERE numprocs = 2", tenant="bystander"
        )
        assert len(result.rows) == 20
        assert not result.errors
        tenants = engine.scheduler_stats()["tenants"]
        assert tenants["bystander"]["completed"] >= 1
        assert tenants["bystander"]["shed"] == 0

    def test_early_close_under_failure_releases_slots(self, monkeypatch):
        grid, engine = self._grid()

        def broken(*args, **kwargs):
            raise RuntimeError("member host died")

        monkeypatch.setattr(
            grid.execution_service("A", "0"), "getPRChunked", broken
        )
        streamed = engine.execute("SELECT m", stream=True, tenant="victim")
        next(iter(streamed))  # touch the stream, then abandon it
        streamed.close()
        stats = engine.scheduler_stats()
        assert stats["tenants"]["victim"]["streamSlots"] == 0
        assert stats["streamActive"] == 0
