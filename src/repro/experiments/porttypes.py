"""Tables 1-3 — PortType listings, generated from the live definitions.

The thesis's first three tables are interface specifications.  Rendering
them from the deployed PortType objects (rather than hand-copying the
text) doubles as a conformance check: every listed operation exists,
with the documented semantics string attached.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.core.semantic import application_porttype_table, execution_porttype_table
from repro.ogsi.porttypes import ogsi_porttype_table


def _clip(text: str, width: int = 100) -> str:
    text = " ".join(text.split())
    if len(text) <= width:
        return text
    return text[: width - 3] + "..."


def render_table1() -> str:
    rows = [[op, _clip(doc)] for op, doc in application_porttype_table()]
    return format_table(
        ["Operation", "Operation Semantics"],
        rows,
        title="Table 1: PPerfGrid Application PortType",
    )


def render_table2() -> str:
    rows = [[op, _clip(doc)] for op, doc in execution_porttype_table()]
    return format_table(
        ["Operation", "Operation Semantics"],
        rows,
        title="Table 2: PPerfGrid Execution PortType",
    )


def render_table3() -> str:
    rows = [[pt, op, _clip(doc, 90)] for pt, op, doc in ogsi_porttype_table()]
    return format_table(
        ["PortType", "Operation", "Description"],
        rows,
        title="Table 3: OGSA PortTypes",
    )
