"""Performance-Result cache (thesis §5.3.2.3 and Table 5).

The cache "stores the results of Performance Result queries in a hash
table indexed by a string value representing the parameters involved in
the query".  The thesis's prototype uses an unbounded table; its
future-work section proposes a replacement policy that "adjusts
dynamically depending on the host's available system resources" — both
are implemented, plus a plain LRU for the ablation bench.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable


@dataclass
class CacheStats:
    """Hit/miss/eviction accounting.

    ``invalidations`` counts entries dropped through targeted
    :meth:`PrCache.remove` calls (coherence-driven), as opposed to
    capacity ``evictions``.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_records(self) -> list[str]:
        """``name|value`` wire records, for SDE publication."""
        return [
            f"hits|{self.hits}",
            f"misses|{self.misses}",
            f"evictions|{self.evictions}",
            f"invalidations|{self.invalidations}",
            f"lookups|{self.lookups}",
            f"hitRate|{self.hit_rate:.6f}",
        ]


class PrCache(ABC):
    """Cache interface: string key -> list of packed PR strings.

    The public methods serialize on an internal lock: the pooled fan-out
    scheduler runs queries from many tenants concurrently against one
    engine, and the LRU structures underneath are not safe to mutate
    from two threads at once.  Subclasses implement the underscore
    hooks, which always run with the lock held.
    """

    def __init__(self) -> None:
        self.stats = CacheStats()
        self._lock = threading.RLock()

    @abstractmethod
    def _get(self, key: str) -> list[str] | None: ...

    @abstractmethod
    def _put(self, key: str, value: list[str]) -> None: ...

    @abstractmethod
    def _remove(self, key: str) -> bool: ...

    @abstractmethod
    def __len__(self) -> int: ...

    def get(self, key: str) -> list[str] | None:
        with self._lock:
            value = self._get(key)
            if value is None:
                self.stats.misses += 1
            else:
                self.stats.hits += 1
            return value

    def put(self, key: str, value: list[str]) -> None:
        with self._lock:
            self._put(key, list(value))

    def remove(self, key: str) -> bool:
        """Drop one entry (targeted invalidation); True if it existed."""
        with self._lock:
            removed = self._remove(key)
            if removed:
                self.stats.invalidations += 1
            return removed

    def contains(self, key: str) -> bool:
        """Membership probe that does not touch the hit/miss counters."""
        with self._lock:
            return self._get(key) is not None

    def clear(self) -> None:  # pragma: no cover - overridden where stateful
        raise NotImplementedError


class NullCache(PrCache):
    """Caching disabled (the Table 5 "caching off" arm)."""

    def _get(self, key: str) -> list[str] | None:
        return None

    def _put(self, key: str, value: list[str]) -> None:
        pass

    def _remove(self, key: str) -> bool:
        return False

    def __len__(self) -> int:
        return 0

    def clear(self) -> None:
        pass


class UnboundedCache(PrCache):
    """The thesis's prototype policy: keep everything."""

    def __init__(self) -> None:
        super().__init__()
        self._table: dict[str, list[str]] = {}

    def _get(self, key: str) -> list[str] | None:
        return self._table.get(key)

    def _put(self, key: str, value: list[str]) -> None:
        self._table[key] = value

    def _remove(self, key: str) -> bool:
        return self._table.pop(key, None) is not None

    def __len__(self) -> int:
        return len(self._table)

    def clear(self) -> None:
        with self._lock:
            self._table.clear()


class LruCache(PrCache):
    """Bounded LRU."""

    def __init__(self, capacity: int) -> None:
        super().__init__()
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._table: OrderedDict[str, list[str]] = OrderedDict()

    def _get(self, key: str) -> list[str] | None:
        value = self._table.get(key)
        if value is not None:
            self._table.move_to_end(key)
        return value

    def _put(self, key: str, value: list[str]) -> None:
        if key in self._table:
            self._table.move_to_end(key)
        self._table[key] = value
        while len(self._table) > self.capacity:
            self._table.popitem(last=False)
            self.stats.evictions += 1

    def _remove(self, key: str) -> bool:
        return self._table.pop(key, None) is not None

    def __len__(self) -> int:
        return len(self._table)

    def clear(self) -> None:
        with self._lock:
            self._table.clear()


#: approximate per-record and per-entry bookkeeping overhead (bytes)
#: charged on top of the packed string payload
_RECORD_OVERHEAD_BYTES = 56
_ENTRY_OVERHEAD_BYTES = 96


def entry_bytes(key: str, value: list[str]) -> int:
    """Approximate resident size of one cache entry.

    Payload characters plus a flat per-record/per-entry overhead — not
    ``sys.getsizeof`` fidelity, but monotone in the real footprint,
    which is all budget-driven eviction needs.
    """
    payload = sum(len(record) for record in value)
    return payload + len(key) + _RECORD_OVERHEAD_BYTES * len(value) + _ENTRY_OVERHEAD_BYTES


class ByteBudgetLruCache(PrCache):
    """LRU bounded by an approximate byte budget (and optionally entries).

    The streaming work makes very large memoized results possible
    (a fully drained streamed query is cached like any bulk result);
    entry-count bounds alone cannot keep such a cache's memory flat.
    This policy tracks an approximate byte total (:func:`entry_bytes`)
    and evicts in LRU order until both the byte budget and the entry
    capacity (when given) hold.  An entry bigger than the whole budget
    is not admitted at all — counted as an eviction — so one oversized
    result can never pin the budget's worth of memory.
    """

    def __init__(self, max_bytes: int, capacity: int | None = None) -> None:
        super().__init__()
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.max_bytes = max_bytes
        self.capacity = capacity
        self._table: OrderedDict[str, list[str]] = OrderedDict()
        self._sizes: dict[str, int] = {}
        self._bytes = 0

    @property
    def approx_bytes(self) -> int:
        """Current approximate resident bytes across all entries."""
        return self._bytes

    def _get(self, key: str) -> list[str] | None:
        value = self._table.get(key)
        if value is not None:
            self._table.move_to_end(key)
        return value

    def _put(self, key: str, value: list[str]) -> None:
        size = entry_bytes(key, value)
        if size > self.max_bytes:
            self._drop(key)
            self.stats.evictions += 1
            return
        self._drop(key)
        self._table[key] = value
        self._sizes[key] = size
        self._bytes += size
        while self._table and (
            self._bytes > self.max_bytes
            or (self.capacity is not None and len(self._table) > self.capacity)
        ):
            evicted, _ = self._table.popitem(last=False)
            self._bytes -= self._sizes.pop(evicted)
            self.stats.evictions += 1

    def _drop(self, key: str) -> bool:
        if self._table.pop(key, None) is None:
            return False
        self._bytes -= self._sizes.pop(key)
        return True

    def _remove(self, key: str) -> bool:
        return self._drop(key)

    def __len__(self) -> int:
        return len(self._table)

    def clear(self) -> None:
        with self._lock:
            self._table.clear()
            self._sizes.clear()
            self._bytes = 0


@dataclass
class AdaptiveCache(PrCache):
    """Capacity follows host free memory (future-work §7).

    ``stats_provider`` returns a resource snapshot with a
    ``memory_free_fraction`` entry (the Service Data Provider payload of
    :meth:`repro.simnet.host.SimHost.resource_stats`).  The effective
    capacity is ``max(min_capacity, int(max_capacity * free_fraction))``,
    re-evaluated on every insert; shrinking evicts in LRU order.
    """

    stats_provider: Callable[[], dict[str, float]] = lambda: {"memory_free_fraction": 1.0}
    max_capacity: int = 1024
    min_capacity: int = 8
    _table: OrderedDict = field(default_factory=OrderedDict)

    def __post_init__(self) -> None:
        super().__init__()
        if self.min_capacity < 1 or self.max_capacity < self.min_capacity:
            raise ValueError(
                f"need 1 <= min_capacity <= max_capacity, got "
                f"{self.min_capacity}, {self.max_capacity}"
            )

    def effective_capacity(self) -> int:
        snapshot = self.stats_provider()
        free = float(snapshot.get("memory_free_fraction", 1.0))
        free = min(1.0, max(0.0, free))
        return max(self.min_capacity, int(self.max_capacity * free))

    def _get(self, key: str) -> list[str] | None:
        value = self._table.get(key)
        if value is not None:
            self._table.move_to_end(key)
        return value

    def _put(self, key: str, value: list[str]) -> None:
        if key in self._table:
            self._table.move_to_end(key)
        self._table[key] = value
        capacity = self.effective_capacity()
        while len(self._table) > capacity:
            self._table.popitem(last=False)
            self.stats.evictions += 1

    def _remove(self, key: str) -> bool:
        return self._table.pop(key, None) is not None

    def __len__(self) -> int:
        return len(self._table)

    def clear(self) -> None:
        with self._lock:
            self._table.clear()
