"""repro.fedquery — federated query planner/executor for PPerfGrid.

A declarative query language over the whole federation of published
Applications, compiled into per-store sub-queries with push-down
(``getExecsOp`` selection, focused ``getPR`` parameters, server-side
``getPRAgg`` aggregation with real SQL in the RDBMS wrappers), executed
with a replica-aware parallel fan-out, merged streamingly, and memoized
per canonical query fingerprint.  ``execute(stream=True)`` swaps the
materialized merge for a bounded-memory incremental one: member rows
arrive through chunked ResultCursors and a k-way heap merge yields the
bulk path's exact row order one row at a time (:class:`StreamedResult`).

Entry points:

* :func:`parse_query` — text -> validated :class:`Query`;
* :func:`plan_query` — :class:`Query` + member catalog (+ optional
  member :class:`StoreStats` for cost-based selection) -> :class:`Plan`;
* :class:`CostModel` — per-member raw/aggregate/skip selection and
  cardinality/byte estimation from ``getStats`` statistics;
* :class:`FederationEngine` — plan + execute against live members;
* :class:`FederatedQueryService` — the OGSI PortType wrapping an engine;
* :class:`ViewMaintainer` / :class:`ViewRegistryService` — standing
  queries maintained incrementally as materialized views, with pushed
  versioned deltas (``createView``/``subscribeView``);
* :func:`naive_query` — the push-down-free reference implementation.
"""

from repro.fedquery.ast import (
    AGG_FUNCS,
    RESERVED_FIELDS,
    Predicate,
    Query,
    QueryError,
    SelectItem,
)
from repro.fedquery.cost import (
    AGG_RECORD_BYTES,
    RAW_RECORD_BYTES,
    CostModel,
    MemberCost,
    unsatisfiable_over,
    vacuous_over,
    value_fraction,
)
from repro.fedquery.executor import FederationEngine, QueryResult, choose_fanout
from repro.fedquery.merge import (
    Accumulator,
    ResultRow,
    StreamingMerger,
    TaskContext,
    order_rows,
    row_sort_key,
)
from repro.fedquery.naive import naive_query
from repro.fedquery.parser import parse_query
from repro.fedquery.planner import (
    ExecSelector,
    MemberPlan,
    Plan,
    PrunedMember,
    SubQuery,
    ViewShape,
    plan_query,
    view_shape,
)
from repro.fedquery.pushdown import (
    PredicateSplit,
    ValueBounds,
    derive_value_bounds,
    derive_window,
    split_predicates,
)
from repro.fedquery.service import FEDERATED_QUERY_PORTTYPE, FederatedQueryService
from repro.fedquery.views import (
    MaterializedView,
    ViewDelta,
    ViewMaintainer,
    empty_view_stats,
)
from repro.fedquery.viewservice import VIEW_REGISTRY_PORTTYPE, ViewRegistryService
from repro.fedquery.stream import (
    DEFAULT_CHUNK_DEPTH,
    DEFAULT_CHUNK_ROWS,
    DEFAULT_MEMOIZE_MAX_BYTES,
    DEFAULT_STREAM_THRESHOLD_ROWS,
    MemberStream,
    StreamedResult,
    merge_streams,
)

__all__ = [
    "AGG_FUNCS",
    "AGG_RECORD_BYTES",
    "Accumulator",
    "CostModel",
    "DEFAULT_CHUNK_DEPTH",
    "DEFAULT_CHUNK_ROWS",
    "DEFAULT_MEMOIZE_MAX_BYTES",
    "DEFAULT_STREAM_THRESHOLD_ROWS",
    "ExecSelector",
    "FEDERATED_QUERY_PORTTYPE",
    "FederatedQueryService",
    "FederationEngine",
    "MaterializedView",
    "MemberCost",
    "MemberPlan",
    "MemberStream",
    "Plan",
    "Predicate",
    "PredicateSplit",
    "PrunedMember",
    "Query",
    "QueryError",
    "QueryResult",
    "RAW_RECORD_BYTES",
    "RESERVED_FIELDS",
    "ResultRow",
    "SelectItem",
    "StreamedResult",
    "StreamingMerger",
    "SubQuery",
    "TaskContext",
    "VIEW_REGISTRY_PORTTYPE",
    "ValueBounds",
    "ViewDelta",
    "ViewMaintainer",
    "ViewRegistryService",
    "ViewShape",
    "choose_fanout",
    "derive_value_bounds",
    "derive_window",
    "empty_view_stats",
    "merge_streams",
    "naive_query",
    "order_rows",
    "parse_query",
    "plan_query",
    "row_sort_key",
    "split_predicates",
    "view_shape",
    "unsatisfiable_over",
    "vacuous_over",
    "value_fraction",
]
