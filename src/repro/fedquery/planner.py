"""Query planner: one federated query -> per-member sub-queries.

The planner is pure analysis — it sees the query AST plus each member's
published metadata (``getExecQueryParams``) and decides:

* which members can contribute at all (``app`` predicates, attribute
  vocabulary, GROUP BY attributes it must be able to resolve);
* how each member selects executions (``getExecsOp`` push-down terms,
  ANDed by intersecting the returned handle sets; ``IN`` decomposes
  into a union of equality calls);
* one :class:`SubQuery` per metric, carrying the time window, tool
  type, focus allowlist, and — in aggregate mode — inclusive value
  bounds and the focus grouping flag for ``getPRAgg``.

**Aggregate mode** is chosen when the SELECT list is all aggregates and
every value predicate is expressible as inclusive bounds; the stores
then return combinable count/total/min/max buckets (RDBMS members via
real SQL).  Otherwise the plan runs in **raw mode**: ``getPR`` rows come
back and the executor filters/reduces client-side.

With member statistics (the ``stats`` argument, fed by ``getStats``),
the mode is chosen *per member and per metric* by the
:mod:`repro.fedquery.cost` model: members whose stats prove they cannot
contribute are skipped outright (``Plan.skipped``), vacuous value
predicates upgrade metrics to bound-free aggregation, and the remainder
fall back to the global choice — so one plan can mix raw and aggregate
members.  ``Plan.mode`` always records the global (stats-free) choice;
``Plan.effective_mode`` summarizes what the cost model actually picked.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.semantic import StoreStats, UNDEFINED_TYPE
from repro.fedquery.ast import Query
from repro.fedquery.cost import CostModel, MemberCost
from repro.fedquery.pushdown import (
    PredicateSplit,
    ValueBounds,
    app_matches,
    derive_value_bounds,
    derive_window,
    focus_allowlist,
    split_predicates,
)
from repro.fedquery.sketch import (
    DistinctSketch,
    tier0_member_answer,
    tier0_query_eligible,
)

#: the attribute name every store answers for unique-execution-id queries
EXEC_ID_ATTRIBUTE = "execid"


@dataclass(frozen=True)
class SubQuery:
    """One store-side call shape for one metric."""

    metric: str
    mode: str  # "aggregate" -> getPRAgg, "raw" -> getPR
    start: float
    end: float
    result_type: str
    min_value: float | None = None
    max_value: float | None = None
    group_by_focus: bool = False

    def describe(self) -> str:
        op = "getPRAgg" if self.mode == "aggregate" else "getPR"
        extras = []
        if self.min_value is not None:
            extras.append(f"value>={self.min_value!r}")
        if self.max_value is not None:
            extras.append(f"value<={self.max_value!r}")
        if self.group_by_focus:
            extras.append("group-by-focus")
        suffix = f" [{', '.join(extras)}]" if extras else ""
        return f"{op}({self.metric}, type={self.result_type}){suffix}"


@dataclass(frozen=True)
class ExecSelector:
    """Execution selection pushed to the store via ``getExecsOp``.

    ``conjuncts`` is an AND of OR-terms: each inner tuple holds
    ``(attribute, value, operator)`` alternatives whose result sets
    union (an ``IN`` predicate), and the outer sets intersect.
    """

    conjuncts: tuple[tuple[tuple[str, str, str], ...], ...]

    def describe(self) -> str:
        ands = []
        for alternatives in self.conjuncts:
            ors = " ∪ ".join(f"getExecsOp({a}, {v!r}, {op})" for a, v, op in alternatives)
            ands.append(f"({ors})" if len(alternatives) > 1 else ors)
        return " ∩ ".join(ands)


@dataclass(frozen=True)
class MemberPlan:
    """Everything the executor needs for one federation member."""

    app: str
    selector: ExecSelector | None  # None -> getAllExecs
    subqueries: tuple[SubQuery, ...]
    foci: frozenset[str] | None  # None -> all of each execution's foci
    group_attrs: tuple[str, ...]
    needs_info: bool
    needs_exec_id: bool
    cost: MemberCost | None = None  # None -> planned without statistics
    #: answer tier: "tier0-stats" (exact from metadata), "tier0-sketch"
    #: (bounded estimate from merged sketches), "pushdown" (getPRAgg),
    #: or "raw" (getPR rows reduced client-side)
    tier: str = "pushdown"
    #: tier-0 payload: ((metric, WindowEstimate), ...) — the member's
    #: answer, computed at plan time from cached stats, zero round-trips
    tier0: tuple = ()

    @property
    def is_tier0(self) -> bool:
        return self.tier.startswith("tier0")

    @property
    def est_round_trips(self) -> int | None:
        """Estimated member calls (0 for tier-0; None without stats)."""
        if self.is_tier0:
            return 0
        if self.cost is not None:
            return self.cost.est_calls
        return None

    def describe(self) -> list[str]:
        lines = [f"member {self.app}: tier={self.tier}"]
        if self.is_tier0:
            lines.append("  answered from cached stats/sketches (0 round-trips)")
            if self.cost is not None:
                lines.append(f"  {self.cost.describe()}")
            return lines
        lines.append(
            "  execs: "
            + (self.selector.describe() if self.selector else "getAllExecs()")
        )
        if self.foci is not None:
            lines.append(f"  foci ∩ {{{', '.join(sorted(self.foci))}}}")
        for sub in self.subqueries:
            lines.append(f"  {sub.describe()}")
        if self.needs_info:
            lines.append(f"  getInfo() for group keys {self.group_attrs}")
        if self.cost is not None:
            lines.append(f"  {self.cost.describe()}")
        if self.est_round_trips is not None:
            lines.append(f"  est round-trips: {self.est_round_trips}")
        return lines


@dataclass(frozen=True)
class PrunedMember:
    app: str
    reason: str


@dataclass(frozen=True)
class Plan:
    """The compiled federated query."""

    query: Query
    split: PredicateSplit
    window: tuple[float, float]
    bounds: ValueBounds
    mode: str  # the global (stats-free) choice: "aggregate" | "raw"
    members: tuple[MemberPlan, ...]
    pruned: tuple[PrunedMember, ...]
    #: members the cost model proved cannot contribute (stats-based)
    skipped: tuple[PrunedMember, ...] = ()
    #: approximate mode: answers may carry error bounds
    approx: bool = False
    #: requested per-cell relative error ceiling (approx mode only)
    tolerance: float | None = None
    #: the query *shape* admits tier-0 answers (individual members may
    #: still fall back when sketches are missing or bounds too wide)
    tier0_capable: bool = False
    #: estimated output group count from merged distinct sketches
    est_groups: int | None = None

    @property
    def fingerprint(self) -> str:
        """Plan-cache key: the query fingerprint plus the answer-tier
        assignment and approx knobs, so a tier-0 plan, a push-down plan,
        and an approximate plan for the same text never collide."""
        base = self.query.fingerprint()
        tier0 = ",".join(
            f"{member.app}={member.tier}"
            for member in self.members
            if member.is_tier0
        )
        if tier0:
            base += f";tier0[{tier0}]"
        if self.approx:
            base += f";approx[tol={self.tolerance!r}]"
        return base

    @property
    def effective_mode(self) -> str:
        """What the cost model actually picked across the federation:
        ``raw`` / ``aggregate`` when uniform, ``tier0`` when every
        member answers from metadata, ``mixed`` when members (or
        metrics within one member) diverge, ``skip`` when statistics
        proved no member can contribute."""
        modes = {
            "tier0"
            if member.is_tier0
            else (member.cost.mode if member.cost is not None else self.mode)
            for member in self.members
        }
        if self.skipped:
            modes.add("skip")
        if not modes:
            return self.mode
        if len(modes) == 1:
            return next(iter(modes))
        if modes == {"tier0", "skip"}:
            return "tier0"
        return "mixed"

    @property
    def estimated_round_trips(self) -> int:
        """Estimated member calls across the plan (tier-0 members count
        zero; members planned without stats estimate one per subquery)."""
        total = 0
        for member in self.members:
            est = member.est_round_trips
            if est is None:
                est = 1 + len(member.subqueries)
            total += est
        return total

    @property
    def estimated_bytes(self) -> int:
        """Cost-model estimate of total transfer bytes (known members)."""
        return sum(
            member.cost.est_bytes
            for member in self.members
            if member.cost is not None and member.cost.est_bytes is not None
        )

    @property
    def stats_degraded(self) -> bool:
        """True when any member was planned without statistics (fetch
        failed); such plans' results must not be memoized, so recovery
        re-plans with fresh stats."""
        return any(
            member.cost is not None and member.cost.stats_missing
            for member in self.members
        )

    def explain(self) -> str:
        lines = [f"plan: {self.fingerprint}"]
        if self.mode == "aggregate":
            lines.append("mode: aggregate (stores return count/total/min/max buckets)")
        else:
            lines.append("mode: raw (getPR rows reduced client-side)")
        if self.approx:
            tol = "none" if self.tolerance is None else repr(self.tolerance)
            lines.append(f"approx: estimates with error bounds (tolerance: {tol})")
        if self.tier0_capable:
            lines.append("tier0: query shape answerable from cached stats/sketches")
        lines.append(f"window: [{self.window[0]!r}, {self.window[1]!r}]")
        if self.split.value and not self.bounds.pushable:
            lines.append("value predicates: strict comparison, filtered client-side")
        for member in self.members:
            lines.extend(member.describe())
        for skipped in self.skipped:
            lines.append(f"skipped {skipped.app}: stats prove {skipped.reason}")
        for pruned in self.pruned:
            lines.append(f"pruned {pruned.app}: {pruned.reason}")
        lines.append(f"estimated round-trips: {self.estimated_round_trips}")
        if self.est_groups is not None:
            lines.append(
                f"estimated output groups: {self.est_groups} (distinct sketches)"
            )
        return "\n".join(lines)


#: aggregate functions whose partial accumulators merge losslessly —
#: everything the grammar admits today: count/sum/min/max combine
#: directly, mean decomposes into the combinable (total, count) pair
COMBINABLE_FUNCS = frozenset({"count", "sum", "mean", "min", "max"})


@dataclass(frozen=True)
class ViewShape:
    """How a materialized view of this query can be maintained.

    ``aggregate-merge``: per-partition accumulator snapshots re-merge
    into the output (combinable aggregates, GROUP BY).
    ``raw-splice``: raw partitions concatenate under the canonical order.
    ``topk-bounded``: raw with LIMIT — each partition keeps only its own
    top-N candidate set (the global top-N is always a subset of the
    union of per-partition top-Ns under a total order).
    ``recompute``: a non-combinable shape; maintenance falls back to
    recomputing the view on every update.
    """

    kind: str
    detail: str

    @property
    def combinable(self) -> bool:
        return self.kind != "recompute"


def view_shape(query: Query) -> ViewShape:
    """Combinability analysis for incremental view maintenance."""
    if query.is_aggregate:
        uncombinable = sorted(
            {item.func for item in query.aggregates} - COMBINABLE_FUNCS
        )
        if uncombinable:
            return ViewShape(
                "recompute",
                f"aggregate function(s) {uncombinable} are not combinable",
            )
        detail = "count/total/min/max accumulators merge per partition"
        if any(item.func == "mean" for item in query.aggregates):
            detail += "; mean folds as sum+count"
        return ViewShape("aggregate-merge", detail)
    if query.limit is not None:
        return ViewShape(
            "topk-bounded",
            f"per-partition candidate sets bounded to LIMIT {query.limit}",
        )
    return ViewShape("raw-splice", "raw partitions splice under the canonical order")


def _build_selector(split: PredicateSplit, params: dict[str, list[str]]) -> ExecSelector | None:
    conjuncts: list[tuple[tuple[str, str, str], ...]] = []
    for pred in split.exec_ids:
        if pred.op == "in":
            conjuncts.append(
                tuple((EXEC_ID_ATTRIBUTE, v, "=") for v in pred.values())
            )
        else:
            conjuncts.append(((EXEC_ID_ATTRIBUTE, str(pred.value), pred.op),))
    for pred in split.attrs:
        if pred.op == "in":
            conjuncts.append(tuple((pred.field, v, "=") for v in pred.values()))
        else:
            conjuncts.append(((pred.field, str(pred.value), pred.op),))
    if not conjuncts:
        return None
    return ExecSelector(conjuncts=tuple(conjuncts))


def _member_subqueries(
    query: Query,
    window: tuple[float, float],
    bounds: ValueBounds,
    result_type: str,
    global_aggregate: bool,
    group_by_focus: bool,
    cost: MemberCost | None,
) -> tuple[SubQuery, ...]:
    """One SubQuery per surviving metric, honoring per-metric modes.

    Without a cost verdict every metric takes the global mode.  With
    one, provably-empty metrics are omitted (an aggregate group missing
    any selected metric is dropped by the merger — exactly what an
    executed empty sub-query would do), and vacuous metrics aggregate
    with no value bounds.
    """
    subqueries: list[SubQuery] = []
    for metric in query.metrics:
        metric_mode = cost.metric_mode(metric) if cost is not None else None
        if metric_mode is None:
            metric_mode = "aggregate" if global_aggregate else "raw"
        if metric_mode == "skip":
            continue
        aggregate = metric_mode == "aggregate"
        bounded = aggregate and not (cost is not None and metric in cost.vacuous)
        subqueries.append(
            SubQuery(
                metric=metric,
                mode=metric_mode,
                start=window[0],
                end=window[1],
                result_type=result_type,
                min_value=bounds.minimum if bounded else None,
                max_value=bounds.maximum if bounded else None,
                group_by_focus=aggregate and group_by_focus,
            )
        )
    return tuple(subqueries)


def _estimate_groups(
    query: Query, stats: dict[str, StoreStats | None], member_apps: list[str]
) -> int | None:
    """Output-cardinality estimate from merged distinct sketches.

    Per group key, member sketches OR together (so a value shared by
    many members counts once) and the per-key estimates multiply —
    ``None`` when any key has no sketch anywhere.  Estimates only: this
    feeds ``explainPlan``, never a correctness decision.
    """
    if not query.group_by:
        return None
    estimate = 1.0
    for key in query.group_by:
        if key == "app":
            estimate *= max(1, len(member_apps))
            continue
        if key == "focus":
            foci = {
                focus
                for app in member_apps
                if (member_stats := stats.get(app)) is not None
                for focus in member_stats.foci
            }
            if not foci:
                return None
            estimate *= len(foci)
            continue
        sketches = [
            sketch
            for app in member_apps
            if (member_stats := stats.get(app)) is not None
            and (sketch := member_stats.distinct(key)) is not None
        ]
        if not sketches:
            return None
        estimate *= max(1.0, DistinctSketch.merge(sketches).estimate())
    return max(1, round(estimate))


def plan_query(
    query: Query,
    catalog: dict[str, dict[str, list[str]]],
    stats: dict[str, StoreStats | None] | None = None,
    approx: bool = False,
    tolerance: float | None = None,
    tier0: bool = True,
) -> Plan:
    """Compile *query* against *catalog* (member name -> query params).

    Semantics note: execution-attribute predicates and GROUP BY keys
    refer to the member's *published* query parameters — a member that
    does not publish a referenced attribute contributes no rows, exactly
    as its own ``getExecs`` would reject the attribute.

    *stats* (member name -> :class:`StoreStats`, or ``None`` for a
    member whose stats could not be fetched) enables cost-based
    per-member plan selection; omitted entirely, the plan is the
    pre-cost-model global plan.

    With *tier0* (and stats), members whose cached stats/sketches fully
    answer an eligible aggregate query are planned at tier 0: no
    selector, no subqueries, zero round-trips — the executor folds the
    plan-time :class:`~repro.fedquery.sketch.WindowEstimate` partials
    straight into the merge.  *approx* admits bounded-error tier-0
    answers (optionally capped at *tolerance* relative error); exact
    mode only takes provably-exact ones.
    """
    split = split_predicates(query)
    window = derive_window(split.time)
    bounds = derive_value_bounds(split.value)
    allowlist = focus_allowlist(split.focus)
    result_type = str(split.type.value) if split.type is not None else UNDEFINED_TYPE
    aggregate = query.is_aggregate and bounds.pushable
    mode = "aggregate" if aggregate else "raw"
    group_attrs = query.group_attributes()
    group_by_focus = "focus" in query.group_by
    needs_exec_id = (not query.is_aggregate) or ("exec" in query.group_by)
    cost_model = (
        CostModel(query, split, window, bounds, allowlist, mode)
        if stats is not None
        else None
    )
    tier0_capable = (
        tier0
        and stats is not None
        and tier0_query_eligible(query, split, window, allowlist)
    )

    members: list[MemberPlan] = []
    pruned: list[PrunedMember] = []
    skipped: list[PrunedMember] = []
    for app in sorted(catalog):
        if query.sources and app not in query.sources:
            pruned.append(PrunedMember(app, "not in FROM clause"))
            continue
        if not app_matches(app, split.app):
            pruned.append(PrunedMember(app, "app predicate excludes it"))
            continue
        params = catalog[app]
        missing = [
            p.field for p in split.attrs if p.field not in params
        ] + [k for k in group_attrs if k not in params]
        if missing:
            pruned.append(
                PrunedMember(app, f"does not publish attribute(s) {sorted(set(missing))}")
            )
            continue
        cost = cost_model.member(stats.get(app)) if cost_model is not None else None
        if cost is not None and cost.mode == "skip":
            skipped.append(PrunedMember(app, cost.reason))
            continue
        answer = (
            tier0_member_answer(query, split.value, stats.get(app), approx, tolerance)
            if tier0_capable
            else None
        )
        if answer is not None:
            tier_label, partials = answer
            members.append(
                MemberPlan(
                    app=app,
                    selector=None,
                    subqueries=(),
                    foci=None,
                    group_attrs=(),
                    needs_info=False,
                    needs_exec_id=False,
                    cost=replace(cost, est_rows=0, est_bytes=0, est_calls=0)
                    if cost is not None
                    else None,
                    tier=tier_label,
                    tier0=partials,
                )
            )
            continue
        subqueries = _member_subqueries(
            query, window, bounds, result_type, aggregate,
            group_by_focus, cost,
        )
        members.append(
            MemberPlan(
                app=app,
                selector=_build_selector(split, params),
                subqueries=subqueries,
                foci=allowlist,
                group_attrs=group_attrs,
                needs_info=bool(group_attrs),
                needs_exec_id=needs_exec_id,
                cost=cost,
                tier="pushdown"
                if any(sub.mode == "aggregate" for sub in subqueries)
                else "raw",
            )
        )
    return Plan(
        query=query,
        split=split,
        window=window,
        bounds=bounds,
        mode=mode,
        members=tuple(members),
        pruned=tuple(pruned),
        skipped=tuple(skipped),
        approx=approx,
        tolerance=tolerance,
        tier0_capable=tier0_capable,
        est_groups=_estimate_groups(
            query, stats, [member.app for member in members]
        )
        if stats is not None
        else None,
    )
