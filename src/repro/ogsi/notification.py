"""Notification PortTypes (push and pull delivery).

The thesis's future-work section proposes notifications for data-store
updates, deliverable "using either a 'push' or a 'pull' model".  Both are
implemented:

* **push** — a :class:`NotificationSourceMixin` keeps subscriptions and,
  on ``notify``, invokes ``DeliverNotification`` on each sink's stub
  through the normal transport (real SOAP round trip per delivery);
* **pull** — a :class:`PullNotificationSink` deployed next to the client
  queues deliveries; the client drains it with ``poll()``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.ogsi.gsh import GridServiceHandle
from repro.ogsi.porttypes import NOTIFICATION_SINK_PORTTYPE
from repro.ogsi.service import GridServiceBase


@dataclass
class Subscription:
    subscription_id: str
    topic: str
    sink_handle: str
    expires_at: float


class NotificationSourceMixin:
    """Mixin adding NotificationSource operations to a Grid service.

    The host class must be a :class:`GridServiceBase` (needs
    ``container``/``require_active``).  Topics are plain strings; a
    subscription to topic ``"*"`` receives everything.
    """

    def _init_notification_source(self) -> None:
        self._subscriptions: dict[str, Subscription] = {}
        self._subscription_counter = 0
        #: deliveries that raised but whose subscription was kept
        self.delivery_failures = 0

    def SubscribeToNotificationTopic(
        self, topic: str, sinkHandle: str, expirationTime: float
    ) -> str:
        self.require_active()  # type: ignore[attr-defined]
        if not topic:
            raise ValueError("topic may not be empty")
        GridServiceHandle.parse(sinkHandle)  # validate
        self._subscription_counter += 1
        sub_id = f"sub-{self._subscription_counter}"
        expires = float("inf") if expirationTime <= 0 else float(expirationTime)
        self._subscriptions[sub_id] = Subscription(sub_id, topic, sinkHandle, expires)
        return sub_id

    def UnsubscribeFromNotificationTopic(self, subscriptionId: str) -> None:
        self.require_active()  # type: ignore[attr-defined]
        self._subscriptions.pop(subscriptionId, None)

    def notify(self, topic: str, message: str) -> int:
        """Push *message* to all live subscribers of *topic*.

        Returns the number of successful deliveries.  Two failure modes
        are distinguished:

        * the sink *handle* no longer resolves to a live service — the
          sink is dead, so the subscription is dropped (the soft-state
          convention);
        * the *delivery* itself raises (e.g. a sink callback fails once)
          — transient, so the subscription is kept and the failure is
          counted in :attr:`delivery_failures`.

        Expired subscriptions are pruned on every pass, whether or not
        their topic matches.
        """
        container = self.container  # type: ignore[attr-defined]
        if container is None:
            raise RuntimeError("source is not deployed")
        now = container.clock.now()
        delivered = 0
        for sub_id, sub in list(self._subscriptions.items()):
            if sub.expires_at <= now:
                del self._subscriptions[sub_id]
                continue
            if sub.topic not in ("*", topic):
                continue
            try:
                stub = container.environment.stub_for_handle(
                    sub.sink_handle, NOTIFICATION_SINK_PORTTYPE
                )
            except Exception:
                del self._subscriptions[sub_id]
                continue
            try:
                stub.DeliverNotification(topic, message)
                delivered += 1
            except Exception:
                self.delivery_failures += 1
        return delivered

    def subscription_count(self) -> int:
        return len(self._subscriptions)


class NotificationSinkBase(GridServiceBase):
    """A sink that hands deliveries to a callback."""

    porttype = NOTIFICATION_SINK_PORTTYPE

    def __init__(self, callback=None) -> None:
        super().__init__()
        self.callback = callback

    def DeliverNotification(self, topic: str, message: str) -> None:
        self.require_active()
        if self.callback is not None:
            self.callback(topic, message)


class PullNotificationSink(NotificationSinkBase):
    """A sink that queues deliveries for client polling (the pull model)."""

    def __init__(self, max_queue: int = 1024) -> None:
        super().__init__(callback=None)
        self.max_queue = max_queue
        self._queue: deque[tuple[str, str]] = deque()
        self.dropped = 0

    def DeliverNotification(self, topic: str, message: str) -> None:
        self.require_active()
        if len(self._queue) >= self.max_queue:
            self._queue.popleft()  # O(1) overflow drop
            self.dropped += 1
        self._queue.append((topic, message))

    def poll(self, max_items: int | None = None) -> list[tuple[str, str]]:
        """Drain up to *max_items* queued (topic, message) pairs."""
        if max_items is None or max_items >= len(self._queue):
            items, self._queue = list(self._queue), deque()
            return items
        return [self._queue.popleft() for _ in range(max_items)]

    def pending(self) -> int:
        return len(self._queue)
