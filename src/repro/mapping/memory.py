"""In-memory wrapper: explicit synthetic datasets for tests and benches.

Unlike the store-backed wrappers, the dataset is handed in as plain
Python objects, so tests can build federations with precisely known
contents (row counts, value ranges, foci) and check the cost model's
estimates against exact ground truth.  ``get_stats`` here is exact by
construction, and the backing lists are mutable so coherence tests can
grow a store and fire ``data_updated``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.core.semantic import (
    UNDEFINED_TYPE,
    MetricStats,
    PerformanceResult,
    StoreStats,
)
from repro.mapping.base import (
    ApplicationWrapper,
    ExecutionWrapper,
    MappingError,
    compare_attribute,
)


@dataclass
class InMemoryExecution:
    """One synthetic execution: attributes plus its Performance Results."""

    exec_id: str
    attrs: dict[str, str] = field(default_factory=dict)
    results: list[PerformanceResult] = field(default_factory=list)

    def time_span(self) -> tuple[float, float]:
        if not self.results:
            return (0.0, 0.0)
        return (
            min(result.start for result in self.results),
            max(result.end for result in self.results),
        )


class InMemoryWrapper(ApplicationWrapper):
    """Table 1 semantics over a list of :class:`InMemoryExecution`."""

    def __init__(
        self,
        name: str,
        executions: list[InMemoryExecution],
        result_type: str = "synthetic",
        description: str = "synthetic in-memory dataset",
    ) -> None:
        self.name = name
        self.executions_data = executions
        self.result_type = result_type
        self.description = description

    def _by_id(self) -> dict[str, InMemoryExecution]:
        return {execution.exec_id: execution for execution in self.executions_data}

    def get_app_info(self) -> list[tuple[str, str]]:
        return [
            ("name", self.name),
            ("description", self.description),
            ("executions", str(len(self.executions_data))),
        ]

    def get_exec_query_params(self) -> dict[str, list[str]]:
        values: dict[str, set[str]] = {}
        for execution in self.executions_data:
            for attr, value in execution.attrs.items():
                values.setdefault(attr, set()).add(value)
        return {attr: sorted(vals) for attr, vals in sorted(values.items())}

    def get_all_exec_ids(self) -> list[str]:
        return [execution.exec_id for execution in self.executions_data]

    def get_exec_ids(self, attribute: str, value: str, operator: str = "=") -> list[str]:
        self.check_operator(operator)
        attr = attribute.lower()
        out = []
        for execution in self.executions_data:
            if attr == "execid":
                stored: str | None = execution.exec_id
            else:
                stored = execution.attrs.get(attr)
            if stored is not None and compare_attribute(stored, value, operator):
                out.append(execution.exec_id)
        return out

    def execution(self, exec_id: str) -> "InMemoryExecutionWrapper":
        execution = self._by_id().get(exec_id)
        if execution is None:
            raise MappingError(f"no {self.name} execution {exec_id!r}")
        return InMemoryExecutionWrapper(execution)

    def get_stats(self) -> StoreStats:
        return StoreStats.merge(
            [_memory_stats(execution) for execution in self.executions_data]
        )


def _memory_stats(execution: InMemoryExecution) -> StoreStats:
    """Exact stats straight off the result list.

    The result list *is* the complete row set, so the per-metric
    sketches honour the tier-0 exactness contract by construction.
    """
    from repro.fedquery.sketch import distincts_from_values, sketches_from_values

    values: dict[str, list[float]] = {}
    foci: list[str] = []
    types: list[str] = []
    for result in execution.results:
        values.setdefault(result.metric, []).append(result.value)
        if result.focus not in foci:
            foci.append(result.focus)
        if result.result_type not in types:
            types.append(result.result_type)
    start, end = execution.time_span()
    keys = {"exec": [execution.exec_id]}
    for attr, attr_value in execution.attrs.items():
        keys[attr] = [attr_value]
    return StoreStats(
        executions=1,
        start=start,
        end=end,
        foci=tuple(sorted(foci)),
        types=tuple(sorted(types)),
        metrics=tuple(
            MetricStats(metric, len(vals), min(vals), max(vals))
            for metric, vals in sorted(values.items())
        ),
        sketches=sketches_from_values(values),
        distincts=distincts_from_values(keys),
    )


class InMemoryExecutionWrapper(ExecutionWrapper):
    """Table 2 semantics over one :class:`InMemoryExecution`."""

    def __init__(self, execution: InMemoryExecution) -> None:
        self.data = execution

    def get_info(self) -> list[tuple[str, str]]:
        pairs = [("execid", self.data.exec_id)]
        pairs.extend(sorted(self.data.attrs.items()))
        return pairs

    def get_foci(self) -> list[str]:
        return sorted({result.focus for result in self.data.results})

    def get_metrics(self) -> list[str]:
        return sorted({result.metric for result in self.data.results})

    def get_types(self) -> list[str]:
        return sorted({result.result_type for result in self.data.results})

    def get_time_start_end(self) -> tuple[float, float]:
        return self.data.time_span()

    def get_pr(
        self,
        metric: str,
        foci: list[str],
        start: float,
        end: float,
        result_type: str,
    ) -> list[PerformanceResult]:
        wanted = set(foci)
        return [
            result
            for result in self.data.results
            if result.metric == metric
            and result.focus in wanted
            and result.start >= start
            and result.end <= end
            and result_type in (UNDEFINED_TYPE, "", result.result_type)
        ]

    def iter_pr(
        self,
        metric: str,
        foci: list[str],
        start: float,
        end: float,
        result_type: str,
    ) -> Iterator[PerformanceResult]:
        # Same filter as get_pr, but yielded row by row: an unordered
        # streaming cursor over a large synthetic store never holds more
        # than the chunk in flight.
        wanted = set(foci)
        for result in self.data.results:
            if (
                result.metric == metric
                and result.focus in wanted
                and result.start >= start
                and result.end <= end
                and result_type in (UNDEFINED_TYPE, "", result.result_type)
            ):
                yield result

    def get_stats(self) -> StoreStats:
        return _memory_stats(self.data)
