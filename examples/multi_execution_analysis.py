#!/usr/bin/env python
"""Multi-execution analysis: the PPerfDB use case PPerfGrid feeds (§7).

The thesis positions PPerfGrid as the data layer under PPerfDB's
multi-execution performance tuning.  This example does that analysis
through the public API:

1. a scaling study — how HPL gflops scale with process count, with
   parallel efficiency;
2. a two-run comparison of an SMG98 trace, focus by focus, flagging
   regressions;
3. an aligned metric table across every bound execution.

Run: ``python examples/multi_execution_analysis.py``
"""

from repro.core import (
    PPerfGridClient,
    PPerfGridSite,
    SiteConfig,
    collect_metric,
    compare_executions,
    scaling_study,
)
from repro.datastores import generate_hpl, generate_smg98
from repro.mapping import HplRdbmsWrapper, Smg98RdbmsWrapper
from repro.ogsi import GridEnvironment


def main() -> None:
    env = GridEnvironment()
    hpl_site = PPerfGridSite(
        env, SiteConfig("hpl:8080", "HPL"),
        HplRdbmsWrapper(generate_hpl(num_executions=60).to_database()),
    )
    smg_site = PPerfGridSite(
        env, SiteConfig("smg:8080", "SMG98"),
        Smg98RdbmsWrapper(
            generate_smg98(num_executions=4, intervals_per_execution=3000).to_database()
        ),
    )
    client = PPerfGridClient(env)
    hpl = client.bind(hpl_site.factory_url, "HPL")
    smg = client.bind(smg_site.factory_url, "SMG98")

    # ---- 1. scaling study over the whole HPL dataset ---------------------
    study = scaling_study(
        hpl.all_executions(), "gflops", ["/Run"], "numprocs", higher_is_better=True
    )
    print(study.to_table())

    # ---- 2. two-run trace comparison --------------------------------------
    runs = smg.all_executions()
    foci = [f for f in runs[0].foci() if f.startswith("/Code/MPI/")]
    comparison = compare_executions(runs[0], runs[1], "time_spent", foci)
    print()
    print(comparison.to_table())
    regressions = comparison.regressions(threshold=1.10)
    print(f"\nFoci >=10% slower in run 2: {[r.focus for r in regressions]}")

    # ---- 3. aligned metric table ------------------------------------------
    table = collect_metric(
        hpl.query_executions("numprocs", "16"),
        "runtimesec",
        ["/Run"],
        label_attribute="rundate",
    )
    print("\nruntimesec for all numprocs=16 runs, labeled by run date:")
    for label in table.labels():
        print(f"  {label:<14} {table.value(label, '/Run'):.3f} s")


if __name__ == "__main__":
    main()
