#!/usr/bin/env python
"""Performance-Result caching (Table 5) and cache policies.

Runs the same getPR query repeatedly against an Execution instance with
caching off and on, shows the hit accounting, then demonstrates the
future-work adaptive policy shrinking under memory pressure.

Run: ``python examples/caching_demo.py``
"""

import time

from repro.core import PPerfGridClient, PPerfGridSite, SiteConfig
from repro.core.prcache import AdaptiveCache, NullCache, UnboundedCache
from repro.datastores import generate_smg98
from repro.mapping import Smg98RdbmsWrapper
from repro.ogsi import GridEnvironment


def timed_queries(env, factory_url: str, n: int) -> float:
    client = PPerfGridClient(env)
    app = client.bind(factory_url, "SMG98")
    execution = app.all_executions()[0]
    t0 = time.perf_counter()
    for _ in range(n):
        execution.get_pr("time_spent", ["/Code/MPI/MPI_Allgather"])
    return (time.perf_counter() - t0) / n * 1000


def main() -> None:
    dataset = generate_smg98(num_executions=2, intervals_per_execution=6000)

    env = GridEnvironment()
    site_off = PPerfGridSite(
        env,
        SiteConfig("off:8080", "SMG98", cache_factory=NullCache),
        Smg98RdbmsWrapper(dataset.to_database()),
    )
    site_on = PPerfGridSite(
        env,
        SiteConfig("on:8080", "SMG98", cache_factory=UnboundedCache),
        Smg98RdbmsWrapper(dataset.to_database()),
    )

    n = 10
    off_ms = timed_queries(env, site_off.factory_url, n)
    on_ms = timed_queries(env, site_on.factory_url, n)
    print(f"Mean getPR time over {n} identical queries:")
    print(f"  caching off: {off_ms:8.2f} ms")
    print(f"  caching on:  {on_ms:8.2f} ms")
    print(f"  speedup:     {off_ms / on_ms:8.2f}x  (thesis Table 5 shape)")

    # Inspect the hit accounting on the cached instance.
    container = env.container_for("on:8080")
    for path in container.service_paths():
        service = container.service_at(path)
        if hasattr(service, "cache") and service.cache.stats.lookups:
            s = service.cache.stats
            print(
                f"\nCache stats for {path}: {s.hits} hits / {s.lookups} lookups "
                f"(hit rate {s.hit_rate:.0%})"
            )

    # ---- adaptive policy under memory pressure (future-work §7) ---------
    print("\nAdaptive cache under shrinking free memory:")
    free = {"fraction": 1.0}
    cache = AdaptiveCache(
        stats_provider=lambda: {"memory_free_fraction": free["fraction"]},
        max_capacity=64,
        min_capacity=4,
    )
    for i in range(64):
        cache.put(f"query-{i}", [f"result-{i}"])
    print(f"  free=100%: capacity={cache.effective_capacity()}, entries={len(cache)}")
    free["fraction"] = 0.1
    cache.put("one-more", ["x"])  # triggers re-evaluation + eviction
    print(f"  free=10%:  capacity={cache.effective_capacity()}, entries={len(cache)}")
    print(f"  evictions so far: {cache.stats.evictions}")


if __name__ == "__main__":
    main()
