"""Federated query push-down vs the naive client loop.

The headline claim of ``repro.fedquery``: compiling a federated query
into per-store sub-queries (``getExecsOp`` selection + ``getPRAgg``
server-side aggregation) beats a hand-written loop that binds every
execution and drags raw ``getPR`` rows over SOAP, and the plan cache
makes repeated dashboards nearly free.

Three arms per query, timed with ``perf_counter``:

* **naive** — :func:`repro.fedquery.naive_query`, the oracle loop;
* **planned (cold)** — full plan + fan-out with an empty plan cache;
* **planned (hot)** — the same query again, answered from the cache.

``FEDQUERY_BENCH_QUICK=1`` (the CI mode) shrinks the grid so the whole
file runs in seconds while still asserting the speedup shape.
"""

from __future__ import annotations

import os
import time

import pytest
from conftest import write_json, write_result

from repro.experiments.common import GridScale, build_grid
from repro.fedquery import naive_query

QUICK = os.environ.get("FEDQUERY_BENCH_QUICK", "") not in ("", "0")

#: the ISSUE acceptance query: filtered aggregate over the SMG98 trace
SMG98_QUERY = (
    "SELECT mean(time_spent), count(time_spent) FROM SMG98 "
    "WHERE numprocs >= 16 GROUP BY numprocs"
)
FEDERATION_QUERY = (
    "SELECT count(runtimesec), mean(runtimesec) WHERE numprocs >= 8 GROUP BY app, numprocs"
)


def _bench_scale() -> GridScale:
    if QUICK:
        return GridScale(
            hpl_executions=16,
            smg98_executions=6,
            smg98_intervals=1500,
            smg98_messages=300,
            presta_executions=8,
        )
    return GridScale.paper()


@pytest.fixture(scope="module")
def fed_bench_grid():
    grid = build_grid(_bench_scale())
    grid.deploy_federation()
    yield grid
    grid.cleanup()


def _time_once(fn) -> tuple[float, object]:
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


def _best_of(fn, rounds: int) -> tuple[float, object]:
    best, out = _time_once(fn)
    for _ in range(rounds - 1):
        elapsed, out = _time_once(fn)
        best = min(best, elapsed)
    return best, out


def _run_arms(engine, text: str) -> dict[str, object]:
    naive_s, naive_rows = _time_once(lambda: naive_query(text, engine.members()))

    def cold():
        engine.invalidate_cache()
        return engine.execute(text)

    cold_s, cold_result = _best_of(cold, rounds=2 if QUICK else 3)
    hot_s, hot_result = _best_of(lambda: engine.execute(text), rounds=5)
    assert not cold_result.cached and hot_result.cached
    assert len(cold_result.rows) == len(naive_rows) == len(hot_result.rows)
    return {
        "rows": len(naive_rows),
        "naive_s": naive_s,
        "cold_s": cold_s,
        "hot_s": hot_s,
        "cold_speedup": naive_s / cold_s,
        "hot_speedup": naive_s / hot_s,
    }


def test_fedquery_pushdown_speedup(fed_bench_grid):
    engine = fed_bench_grid.fed_engine
    arms = {
        "SMG98 filtered aggregate": _run_arms(engine, SMG98_QUERY),
        "federation-wide aggregate": _run_arms(engine, FEDERATION_QUERY),
    }

    lines = [
        f"Federated query push-down ({'quick' if QUICK else 'paper'} scale)",
        f"{'query':<28}{'rows':>6}{'naive':>10}{'cold':>10}{'hot':>10}"
        f"{'cold x':>9}{'hot x':>9}",
    ]
    for name, a in arms.items():
        lines.append(
            f"{name:<28}{a['rows']:>6}{a['naive_s']:>9.3f}s{a['cold_s']:>9.3f}s"
            f"{a['hot_s']:>9.3f}s{a['cold_speedup']:>8.1f}x{a['hot_speedup']:>8.1f}x"
        )
    write_result("fedquery_pushdown.txt", "\n".join(lines))
    write_json("fedquery_pushdown", {"arms": arms, "quick": QUICK})

    smg = arms["SMG98 filtered aggregate"]
    # acceptance: push-down beats the naive loop by at least 2x on the
    # SMG98 filtered aggregate, and the plan cache beats even that
    assert smg["cold_speedup"] >= 2.0, f"push-down speedup only {smg['cold_speedup']:.2f}x"
    assert smg["hot_s"] <= smg["cold_s"]
    for a in arms.values():
        assert a["hot_speedup"] >= a["cold_speedup"]
