"""Tests for the Manager service: GSH caching and replica distribution."""

import pytest

from repro.core import PPerfGridClient, PPerfGridSite, SiteConfig
from repro.core.manager import (
    BlockPolicy,
    InterleavedPolicy,
    LeastLoadedPolicy,
    ManagerService,
    RandomPolicy,
)
from repro.datastores import generate_hpl
from repro.mapping import HplRdbmsWrapper
from repro.ogsi import GridEnvironment, GridServiceHandle


@pytest.fixture()
def replicated_site():
    env = GridEnvironment()
    wrapper = HplRdbmsWrapper(generate_hpl(num_executions=8).to_database())
    site = PPerfGridSite(env, SiteConfig("hostA:1", "HPL"), wrapper)
    site.add_replica("hostB:1")
    client = PPerfGridClient(env)
    return env, site, client


class TestDistribution:
    def test_interleaving_alternates_hosts(self, replicated_site):
        env, site, client = replicated_site
        app = client.bind(site.factory_url, "HPL")
        executions = app.all_executions()
        authorities = [GridServiceHandle.parse(e.gsh).authority for e in executions]
        assert authorities == ["hostA:1", "hostB:1"] * 4

    def test_assignment_counts_balanced(self, replicated_site):
        env, site, client = replicated_site
        app = client.bind(site.factory_url, "HPL")
        app.all_executions()
        counts = list(site.manager.assignment_counts().values())
        assert counts == [4, 4]

    def test_gsh_cache_prevents_recreation(self, replicated_site):
        env, site, client = replicated_site
        app = client.bind(site.factory_url, "HPL")
        first = [e.gsh for e in app.all_executions()]
        created = site.manager.creations
        second = [e.gsh for e in app.all_executions()]
        assert first == second
        assert site.manager.creations == created
        assert site.manager.cache_hits >= len(first)

    def test_subset_query_reuses_cached_instances(self, replicated_site):
        env, site, client = replicated_site
        app = client.bind(site.factory_url, "HPL")
        all_gshs = {e.gsh for e in app.all_executions()}
        subset = app.query_executions("runid", "3")
        assert all(e.gsh in all_gshs for e in subset)

    def test_destroyed_instance_recreated(self, replicated_site):
        env, site, client = replicated_site
        app = client.bind(site.factory_url, "HPL")
        executions = app.all_executions()
        executions[0].destroy()
        refreshed = app.all_executions()
        assert refreshed[0].gsh != executions[0].gsh
        # The fresh instance is live.
        assert refreshed[0].metrics()

    def test_add_replica_duplicate_rejected(self, replicated_site):
        env, site, client = replicated_site
        handle = site.manager.replicas[0].factory_handle
        with pytest.raises(ValueError):
            site.manager.add_replica(handle)

    def test_manager_requires_a_factory(self):
        with pytest.raises(ValueError):
            ManagerService([])

    def test_evict_forces_recreation(self, replicated_site):
        env, site, client = replicated_site
        app = client.bind(site.factory_url, "HPL")
        app.all_executions()
        created = site.manager.creations
        site.manager.evict("1")
        app.all_executions()
        assert site.manager.creations == created + 1


class _Replica:
    def __init__(self, assigned=0):
        self.assigned = assigned


class TestPolicies:
    def test_interleaved_round_robin(self):
        policy = InterleavedPolicy()
        replicas = [_Replica(), _Replica(), _Replica()]
        choices = [policy.choose(replicas, str(i), i) for i in range(6)]
        assert choices == [0, 1, 2, 0, 1, 2]

    def test_interleaved_reset(self):
        policy = InterleavedPolicy()
        replicas = [_Replica(), _Replica()]
        policy.choose(replicas, "a", 0)
        policy.reset()
        assert policy.choose(replicas, "b", 0) == 0

    def test_block_keeps_batch_together(self):
        policy = BlockPolicy()
        replicas = [_Replica(), _Replica()]
        batch1 = [policy.choose(replicas, str(i), i) for i in range(4)]
        assert len(set(batch1)) == 1
        # A new batch (ordinal resets) rotates to the other replica.
        batch2 = [policy.choose(replicas, str(i), i) for i in range(4)]
        assert len(set(batch2)) == 1
        assert set(batch1) != set(batch2)

    def test_random_seeded_deterministic(self):
        replicas = [_Replica(), _Replica(), _Replica()]
        a = RandomPolicy(seed=1)
        b = RandomPolicy(seed=1)
        assert [a.choose(replicas, str(i), i) for i in range(10)] == [
            b.choose(replicas, str(i), i) for i in range(10)
        ]

    def test_random_reset_restarts_sequence(self):
        replicas = [_Replica(), _Replica(), _Replica()]
        policy = RandomPolicy(seed=1)
        first = [policy.choose(replicas, str(i), i) for i in range(5)]
        policy.reset()
        assert [policy.choose(replicas, str(i), i) for i in range(5)] == first

    def test_least_loaded_balances(self):
        policy = LeastLoadedPolicy()
        replicas = [_Replica(), _Replica()]
        for i in range(4):
            index = policy.choose(replicas, str(i), i)
            replicas[index].assigned += 1
        assert [r.assigned for r in replicas] == [2, 2]

    def test_least_loaded_prefers_idle_replica(self):
        policy = LeastLoadedPolicy()
        replicas = [_Replica(assigned=10), _Replica(assigned=0)]
        assert policy.choose(replicas, "k", 0) == 1


class TestStatsSnapshot:
    def test_stats_reflect_topology_and_caching(self, replicated_site):
        env, site, client = replicated_site
        app = client.bind(site.factory_url, "HPL")
        app.all_executions()
        app.all_executions()
        stats = site.manager.stats()
        assert stats["policy"] == "interleaved"
        assert stats["replicas"] == 2
        assert stats["creations"] == 8
        assert stats["cache_hits"] >= 8
        assert stats["lookups"] == stats["creations"] + stats["cache_hits"]
        assert 0.0 < stats["hit_rate"] < 1.0
        assert stats["cached_instances"] == 8
        assert stats["instances_per_host"] == {"hostA:1": 4, "hostB:1": 4}

    def test_stats_before_any_query(self, replicated_site):
        env, site, client = replicated_site
        stats = site.manager.stats()
        assert stats["creations"] == 0
        assert stats["hit_rate"] == 0.0
        assert stats["instances_per_host"] == {"hostA:1": 0, "hostB:1": 0}
