"""Service container and grid environment (the Axis/Tomcat analog).

The container is the server half of the Architecture Adapter pattern:
its ingress takes ``(path, request-bytes)``, parses the SOAP envelope,
validates the operation against the target service's PortType, invokes
the native method, and serializes the result (or a fault) back to bytes.

A :class:`GridEnvironment` groups containers, wires them to a shared
transport/clock, and builds client stubs — the whole "grid" of one
PPerfGrid session lives in one environment object.
"""

from __future__ import annotations

from typing import Callable

from repro.ogsi.gsh import GridServiceHandle, GshError
from repro.ogsi.porttypes import GRID_SERVICE_PORTTYPE
from repro.ogsi.service import GridServiceBase, ServiceState
from repro.simnet.clock import Clock, RealClock
from repro.simnet.host import SimHost
from repro.simnet.metrics import Recorder
from repro.simnet.transport import LoopbackTransport, Transport
from repro.soap.faults import SoapFault, fault_from_exception
from repro.soap.rpc import decode_request, encode_fault, encode_response
from repro.wsdl.porttype import Operation, PortType
from repro.wsdl.stubgen import ClientStub, make_stub
from repro.xmlkit import Element

#: optional security check: (headers, request_bytes) -> None or raise
SecurityVerifier = Callable[[list[Element], bytes], None]


class ContainerError(RuntimeError):
    """Deployment/routing errors inside a container."""


class ServiceContainer:
    """Hosts Grid services under one authority (one "host:port")."""

    def __init__(
        self,
        authority: str,
        environment: "GridEnvironment",
        host: SimHost | None = None,
    ) -> None:
        self.authority = authority
        self.environment = environment
        self.host = host
        self._services: dict[str, GridServiceBase] = {}
        self._instance_counters: dict[str, int] = {}
        self.verifier: SecurityVerifier | None = None
        self.requests_handled = 0
        # One request at a time per container: service implementations and
        # the PR caches are not thread-safe, and the modeled hosts are
        # single-CPU anyway — threaded clients (run_queries_parallel)
        # serialize here exactly as they would on the thesis's hardware.
        # Reentrant because dispatch nests: an Application operation calls
        # the Manager, which calls an Execution Factory, all potentially
        # hosted in this same container.
        import threading

        self._dispatch_lock = threading.RLock()

    @property
    def clock(self) -> Clock:
        return self.environment.clock

    # ---------------------------------------------------------- deployment
    def deploy(self, path: str, service: GridServiceBase) -> GridServiceHandle:
        """Deploy a persistent service at *path*; returns its GSH."""
        if path in self._services:
            raise ContainerError(f"path {path!r} already deployed on {self.authority}")
        gsh = GridServiceHandle(self.authority, path)
        self._services[path] = service
        service.on_deployed(self, gsh)
        return gsh

    def deploy_instance(self, factory_path: str, instance: GridServiceBase) -> GridServiceHandle:
        """Deploy a transient instance under a factory's path."""
        count = self._instance_counters.get(factory_path, 0) + 1
        self._instance_counters[factory_path] = count
        path = f"{factory_path}/instances/{count}"
        return self.deploy(path, instance)

    def remove_service(self, gsh: GridServiceHandle) -> None:
        self._services.pop(gsh.path, None)

    def has_service(self, gsh: GridServiceHandle) -> bool:
        service = self._services.get(gsh.path)
        return service is not None and service.state is ServiceState.ACTIVE

    def service_at(self, path: str) -> GridServiceBase | None:
        return self._services.get(path)

    def service_count(self) -> int:
        return len(self._services)

    def service_paths(self) -> list[str]:
        return sorted(self._services)

    def sweep_expired(self) -> int:
        """Destroy instances whose termination time has passed."""
        now = self.clock.now()
        expired = [
            svc
            for svc in list(self._services.values())
            if svc.state is ServiceState.ACTIVE and svc.is_expired(now)
        ]
        for service in expired:
            service.Destroy()
        return len(expired)

    # ------------------------------------------------------------- ingress
    def handle_request(self, path: str, request: bytes) -> bytes:
        """The container ingress: bytes in, bytes out, faults on errors."""
        with self._dispatch_lock:
            return self._handle_request_locked(path, request)

    def _handle_request_locked(self, path: str, request: bytes) -> bytes:
        self.requests_handled += 1
        try:
            rpc = decode_request(request)
        except SoapFault as fault:
            return encode_fault(fault)
        except Exception as exc:
            return encode_fault(fault_from_exception(exc, caller_error=True))
        try:
            if self.verifier is not None:
                self.verifier(rpc.headers, request)
            service = self._services.get(path)
            if service is None or service.state is not ServiceState.ACTIVE:
                raise SoapFault("Client", f"no service at {self.authority}/{path}")
            operation = self._find_operation(service, rpc.operation)
            if len(rpc.params) != len(operation.parameters):
                raise SoapFault(
                    "Client",
                    f"{rpc.operation} takes {len(operation.parameters)} "
                    f"argument(s), got {len(rpc.params)}",
                )
            method = getattr(service, rpc.operation, None)
            if method is None:
                raise SoapFault(
                    "Server",
                    f"{type(service).__name__} declares but does not implement "
                    f"{rpc.operation}",
                )
            result = method(*rpc.params)
            return encode_response(
                rpc.namespace,
                rpc.operation,
                result,
                is_void=operation.returns == "void",
            )
        except SoapFault as fault:
            return encode_fault(fault)
        except Exception as exc:
            return encode_fault(fault_from_exception(exc))

    @staticmethod
    def _find_operation(service: GridServiceBase, name: str) -> Operation:
        if service.porttype.has_operation(name):
            return service.porttype.operation(name)
        if GRID_SERVICE_PORTTYPE.has_operation(name):
            return GRID_SERVICE_PORTTYPE.operation(name)
        raise SoapFault(
            "Client",
            f"PortType {service.porttype.name!r} has no operation {name!r}",
        )


class GridEnvironment:
    """One grid: shared clock, shared transport, a set of containers."""

    def __init__(self, clock: Clock | None = None, recorder: Recorder | None = None) -> None:
        self.clock: Clock = clock or RealClock()
        self.recorder = recorder if recorder is not None else Recorder(self.clock)
        self.transport: Transport = LoopbackTransport(self.recorder)
        self._containers: dict[str, ServiceContainer] = {}

    def create_container(self, authority: str, host: SimHost | None = None) -> ServiceContainer:
        if authority in self._containers:
            raise ContainerError(f"a container is already bound at {authority!r}")
        container = ServiceContainer(authority, self, host=host)
        self._containers[authority] = container
        # The loopback transport routes by authority to the container ingress.
        self.transport.bind(authority, container.handle_request)  # type: ignore[attr-defined]
        return container

    def container_for(self, authority: str) -> ServiceContainer | None:
        return self._containers.get(authority)

    def containers(self) -> list[ServiceContainer]:
        return [self._containers[a] for a in sorted(self._containers)]

    # ---------------------------------------------------------------- stubs
    def stub_for_handle(
        self,
        handle: str | GridServiceHandle,
        porttype: PortType,
        headers_provider=None,
    ) -> ClientStub:
        """Bind a stub to the service a GSH names (the Figure 1 'bind' step)."""
        gsh = handle if isinstance(handle, GridServiceHandle) else GridServiceHandle.parse(handle)
        container = self._containers.get(gsh.authority)
        if container is None or not container.has_service(gsh):
            raise GshError(f"handle {gsh} does not resolve to a live service")
        return make_stub(porttype, gsh.endpoint_url(), self.transport, headers_provider)

    def stub_for_endpoint(
        self, endpoint_url: str, porttype: PortType, headers_provider=None
    ) -> ClientStub:
        return make_stub(porttype, endpoint_url, self.transport, headers_provider)

    def stub_from_wsdl(
        self, handle: str | GridServiceHandle, headers_provider=None
    ) -> ClientStub:
        """Bind with no compile-time PortType knowledge (Figure 1 flow).

        Fetches the service's published WSDL through the GridService
        PortType (always available), parses it, and builds the stub from
        the parsed interface — the analog of WSDL2Java stub generation.
        """
        from repro.wsdl.document import parse_wsdl
        from repro.xmlkit import parse as parse_xml

        bootstrap = self.stub_for_handle(handle, GRID_SERVICE_PORTTYPE, headers_provider)
        result_xml = bootstrap.FindServiceData("wsdl")
        root = parse_xml(result_xml).root
        sde = root.find("serviceDataElement")
        if sde is None:
            raise GshError(f"service {handle} publishes no WSDL service data")
        value = sde.find("value")
        wsdl_text = value.text() if value is not None else ""
        porttype, endpoint = parse_wsdl(wsdl_text)
        return make_stub(porttype, endpoint, self.transport, headers_provider)

    def sweep_expired(self) -> int:
        """Run lifetime sweeps on every container."""
        return sum(c.sweep_expired() for c in self._containers.values())

    def total_services(self) -> int:
        return sum(c.service_count() for c in self._containers.values())
