"""SQL value types and coercion rules.

Values at runtime are plain Python objects: ``None`` (NULL), ``int``,
``float``, ``str``, ``bool``.  Comparison follows SQL three-valued-logic
conventions loosely: any comparison involving NULL is false (we do not
model UNKNOWN — the thesis's queries never rely on it).
"""

from __future__ import annotations

from enum import Enum

from repro.minidb.errors import ProgrammingError

SqlValue = None | int | float | str | bool


class SqlType(str, Enum):
    """Declared column types."""

    INTEGER = "INTEGER"
    REAL = "REAL"
    TEXT = "TEXT"
    BOOLEAN = "BOOLEAN"

    @staticmethod
    def parse(name: str) -> "SqlType":
        upper = name.upper()
        aliases = {
            "INT": SqlType.INTEGER,
            "INTEGER": SqlType.INTEGER,
            "BIGINT": SqlType.INTEGER,
            "SMALLINT": SqlType.INTEGER,
            "REAL": SqlType.REAL,
            "FLOAT": SqlType.REAL,
            "DOUBLE": SqlType.REAL,
            "NUMERIC": SqlType.REAL,
            "TEXT": SqlType.TEXT,
            "VARCHAR": SqlType.TEXT,
            "CHAR": SqlType.TEXT,
            "STRING": SqlType.TEXT,
            "BOOLEAN": SqlType.BOOLEAN,
            "BOOL": SqlType.BOOLEAN,
        }
        if upper not in aliases:
            raise ProgrammingError(f"unknown column type {name!r}")
        return aliases[upper]


def coerce(value: SqlValue, sql_type: SqlType, column: str) -> SqlValue:
    """Coerce *value* to the declared column type on insert/update.

    NULL passes through (nullability is checked separately).  Numeric
    widening (int -> REAL) is allowed; lossy or cross-kind coercions
    raise :class:`ProgrammingError`.
    """
    if value is None:
        return None
    if sql_type is SqlType.INTEGER:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ProgrammingError(f"column {column!r} expects INTEGER, got {value!r}")
        if isinstance(value, float):
            if not value.is_integer():
                raise ProgrammingError(f"column {column!r} expects INTEGER, got {value!r}")
            return int(value)
        return value
    if sql_type is SqlType.REAL:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ProgrammingError(f"column {column!r} expects REAL, got {value!r}")
        return float(value)
    if sql_type is SqlType.TEXT:
        if not isinstance(value, str):
            raise ProgrammingError(f"column {column!r} expects TEXT, got {value!r}")
        return value
    if sql_type is SqlType.BOOLEAN:
        if not isinstance(value, bool):
            raise ProgrammingError(f"column {column!r} expects BOOLEAN, got {value!r}")
        return value
    raise ProgrammingError(f"unhandled type {sql_type}")  # pragma: no cover


def compare_values(a: SqlValue, b: SqlValue) -> int | None:
    """Three-way compare; ``None`` when either side is NULL or kinds differ.

    Numbers compare numerically across int/float; strings with strings;
    booleans with booleans.
    """
    if a is None or b is None:
        return None
    a_num = isinstance(a, (int, float)) and not isinstance(a, bool)
    b_num = isinstance(b, (int, float)) and not isinstance(b, bool)
    if a_num and b_num:
        return (a > b) - (a < b)
    if isinstance(a, str) and isinstance(b, str):
        return (a > b) - (a < b)
    if isinstance(a, bool) and isinstance(b, bool):
        return (a > b) - (a < b)
    return None


def sort_key(value: SqlValue) -> tuple:
    """Total-order key for ORDER BY / DISTINCT: NULLs first, then by kind."""
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (2, float(value))
    return (3, value)
