"""Chunk envelope for streaming result transfer.

A :class:`repro.ogsi.cursor.ResultCursorService` answers each ``next``
call with one *chunk*: a header record followed by the payload rows,
all inside the ordinary SOAP string array.  Keeping the framing inside
the array (instead of inventing a new XML shape) means the existing
encoding, stub, and container layers carry chunks unchanged — the same
architecture-adapter discipline as the ``name|value`` wire records.

Header wire form::

    #chunk|<seq>|<count>|<done>[|<encoding>]

``seq`` is the zero-based chunk sequence number (clients verify it to
detect missed or replayed fetches), ``count`` the number of payload
rows the chunk carries, and ``done`` ``1`` on the final chunk of the
stream (``0`` otherwise).  ``#`` cannot start a packed result record,
so the header is unambiguous.

The optional fifth field is the negotiated *content encoding* of the
payload records following the header:

* ``xml`` (the default, and the only form a four-field header can
  carry): ``count`` per-row strings, exactly the legacy wire bytes —
  a colbatch-unaware peer never sees anything new;
* ``colbatch``: a :mod:`repro.soap.colbatch` columnar batch whose
  decoded row count must equal ``count``.
"""

from __future__ import annotations

from dataclasses import dataclass

#: first field of every chunk header record
CHUNK_HEADER = "#chunk"

#: per-row strings in the SOAP array — the universal baseline encoding
ENCODING_XML = "xml"

#: columnar batch records (see :mod:`repro.soap.colbatch`)
ENCODING_COLBATCH = "colbatch"

#: every encoding this build can serve/decode, in server preference
#: order — negotiation picks the first one the client also accepts
WIRE_ENCODINGS = (ENCODING_COLBATCH, ENCODING_XML)


class ChunkError(ValueError):
    """Raised for malformed or out-of-sequence chunk envelopes."""


@dataclass(frozen=True)
class ChunkEnvelope:
    """One decoded chunk: sequence number, payload rows, end-of-stream,
    and the content encoding the payload arrived in."""

    seq: int
    rows: tuple[str, ...]
    done: bool
    encoding: str = ENCODING_XML


def encode_chunk(
    seq: int, rows: list[str], done: bool, encoding: str = ENCODING_XML
) -> list[str]:
    """Frame *rows* as a chunk payload (header record + payload records).

    ``encoding="xml"`` emits the legacy four-field header and per-row
    payload byte-for-byte; ``"colbatch"`` emits the tagged five-field
    header followed by the columnar batch records.
    """
    if seq < 0:
        raise ChunkError(f"chunk seq must be >= 0, got {seq}")
    if encoding == ENCODING_XML:
        return [f"{CHUNK_HEADER}|{seq}|{len(rows)}|{1 if done else 0}", *rows]
    if encoding == ENCODING_COLBATCH:
        from repro.soap.colbatch import encode_batch

        header = f"{CHUNK_HEADER}|{seq}|{len(rows)}|{1 if done else 0}|{encoding}"
        return [header, *encode_batch(rows)]
    raise ChunkError(f"unknown chunk encoding {encoding!r}")


def decode_chunk(payload: list[str]) -> ChunkEnvelope:
    """Parse a chunk payload; raises :class:`ChunkError` on bad framing."""
    if not payload:
        raise ChunkError("empty chunk payload (missing header)")
    header = payload[0]
    parts = header.split("|")
    if len(parts) not in (4, 5) or parts[0] != CHUNK_HEADER:
        raise ChunkError(f"bad chunk header {header!r}")
    try:
        seq = int(parts[1])
        count = int(parts[2])
        done = bool(int(parts[3]))
    except ValueError as exc:
        raise ChunkError(f"bad chunk header {header!r}: {exc}") from exc
    encoding = parts[4] if len(parts) == 5 else ENCODING_XML
    if encoding == ENCODING_XML:
        rows = tuple(payload[1:])
    elif encoding == ENCODING_COLBATCH:
        from repro.soap.colbatch import decode_batch

        rows = tuple(decode_batch(payload[1:]))
    else:
        raise ChunkError(f"chunk {seq} carries unknown encoding {encoding!r}")
    if len(rows) != count:
        raise ChunkError(
            f"chunk {seq} declares {count} row(s) but carries {len(rows)}"
        )
    return ChunkEnvelope(seq=seq, rows=rows, done=done, encoding=encoding)
