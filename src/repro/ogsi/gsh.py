"""Grid Service Handles.

A GSH is a globally unique URL naming one Grid service or service
instance: ``ppg://<authority>/<service-path>``.  The thesis requires that
"there cannot be two Grid services or Grid service instances with the
same GSH"; uniqueness is enforced per container by monotonic instance
counters and checked again at deployment time.

Resolving a GSH to an invocable endpoint (a Grid Service Reference) is
the HandleMap's job; in this reproduction a GSH resolves to an ``http://``
endpoint URL with the same authority and path.
"""

from __future__ import annotations

from dataclasses import dataclass

SCHEME = "ppg://"


class GshError(ValueError):
    """Raised for malformed or unresolvable handles."""


@dataclass(frozen=True)
class GridServiceHandle:
    """A parsed GSH."""

    authority: str
    path: str

    def __post_init__(self) -> None:
        if not self.authority:
            raise GshError("GSH authority may not be empty")
        if not self.path:
            raise GshError("GSH path may not be empty")
        if self.path.startswith("/") or self.path.endswith("/"):
            raise GshError(f"GSH path may not start or end with '/': {self.path!r}")

    @staticmethod
    def parse(text: str) -> "GridServiceHandle":
        if not text.startswith(SCHEME):
            raise GshError(f"a GSH must start with {SCHEME!r}: {text!r}")
        rest = text[len(SCHEME) :]
        authority, sep, path = rest.partition("/")
        if not sep:
            raise GshError(f"GSH {text!r} has no service path")
        return GridServiceHandle(authority=authority, path=path)

    @staticmethod
    def is_valid(text: str) -> bool:
        try:
            GridServiceHandle.parse(text)
            return True
        except GshError:
            return False

    def url(self) -> str:
        """The GSH in URL form (what appears on the wire)."""
        return f"{SCHEME}{self.authority}/{self.path}"

    def endpoint_url(self) -> str:
        """The Grid Service Reference this handle maps to."""
        return f"http://{self.authority}/{self.path}"

    @property
    def instance_id(self) -> str | None:
        """Trailing instance id for instance handles (``.../instances/<id>``)."""
        parts = self.path.split("/")
        if len(parts) >= 2 and parts[-2] == "instances":
            return parts[-1]
        return None

    @property
    def base_service(self) -> str:
        """The path with any trailing ``instances/<id>`` removed."""
        parts = self.path.split("/")
        if len(parts) >= 2 and parts[-2] == "instances":
            return "/".join(parts[:-2])
        return self.path

    def __str__(self) -> str:
        return self.url()
