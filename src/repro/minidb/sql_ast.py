"""Statement-level AST nodes produced by the SQL parser."""

from __future__ import annotations

from dataclasses import dataclass

from repro.minidb.expr import Expr
from repro.minidb.schema import ColumnDef


@dataclass(frozen=True)
class SelectItem:
    """One item in the select list: an expression with an optional alias."""

    expr: Expr
    alias: str | None
    #: Set for bare ``*`` or ``alias.*`` items; expr is ignored then.
    star_table: str | None = None
    is_star: bool = False


@dataclass(frozen=True)
class TableRef:
    """A table in FROM/JOIN with its effective alias."""

    table: str
    alias: str


@dataclass(frozen=True)
class JoinClause:
    """An INNER/LEFT join against *table* with an ON condition."""

    table: TableRef
    condition: Expr
    left_outer: bool = False


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    descending: bool = False


@dataclass(frozen=True)
class SelectStmt:
    items: tuple[SelectItem, ...]
    table: TableRef
    joins: tuple[JoinClause, ...] = ()
    where: Expr | None = None
    group_by: tuple[Expr, ...] = ()
    having: Expr | None = None
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    offset: int = 0
    distinct: bool = False


@dataclass(frozen=True)
class InsertStmt:
    table: str
    columns: tuple[str, ...]  # empty = all columns in schema order
    rows: tuple[tuple[Expr, ...], ...]


@dataclass(frozen=True)
class UpdateStmt:
    table: str
    assignments: tuple[tuple[str, Expr], ...]
    where: Expr | None


@dataclass(frozen=True)
class DeleteStmt:
    table: str
    where: Expr | None


@dataclass(frozen=True)
class CreateTableStmt:
    table: str
    columns: tuple[ColumnDef, ...]
    if_not_exists: bool = False


@dataclass(frozen=True)
class CreateIndexStmt:
    name: str
    table: str
    column: str
    unique: bool = False


@dataclass(frozen=True)
class DropTableStmt:
    table: str
    if_exists: bool = False


@dataclass(frozen=True)
class DropIndexStmt:
    name: str
    if_exists: bool = False


Statement = (
    SelectStmt
    | InsertStmt
    | UpdateStmt
    | DeleteStmt
    | CreateTableStmt
    | CreateIndexStmt
    | DropTableStmt
    | DropIndexStmt
)
