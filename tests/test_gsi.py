"""Tests for GSI-style credentials, delegation, and message security."""

import pytest

from repro.gsi import (
    CertificateAuthority,
    CredentialError,
    make_verifier,
    sign_request,
    signature_header_provider,
)
from repro.ogsi import GRID_SERVICE_PORTTYPE, GridEnvironment, GridServiceBase
from repro.simnet.clock import VirtualClock
from repro.soap import SoapFault
from repro.wsdl import Operation, Parameter, PortType
from repro.xmlkit import QName


@pytest.fixture()
def ca():
    return CertificateAuthority("TestCA")


class TestCredentials:
    def test_issue_unique_identities(self, ca):
        alice = ca.issue("/CN=alice")
        assert alice.identity == "/CN=alice"
        with pytest.raises(CredentialError):
            ca.issue("/CN=alice")

    def test_signing_is_deterministic_per_key(self, ca):
        alice = ca.issue("/CN=alice")
        bob = ca.issue("/CN=bob")
        assert alice.sign(b"x") == alice.sign(b"x")
        assert alice.sign(b"x") != bob.sign(b"x")

    def test_key_lookup(self, ca):
        alice = ca.issue("/CN=alice")
        assert ca.key_for_identity("/CN=alice", 0.0) == alice.key
        with pytest.raises(CredentialError):
            ca.key_for_identity("/CN=ghost", 0.0)


class TestDelegation:
    def test_proxy_chain(self, ca):
        alice = ca.issue("/CN=alice")
        proxy = alice.delegate(lifetime=100.0, issued_at=0.0)
        ca.register_proxy(proxy)
        assert ca.key_for_identity(proxy.identity, 50.0) == proxy.key
        proxy2 = proxy.delegate(lifetime=100.0, issued_at=10.0)
        ca.register_proxy(proxy2)
        # Child expiry clamps to the parent's.
        assert proxy2.expires_at <= proxy.expires_at

    def test_expired_proxy_rejected(self, ca):
        alice = ca.issue("/CN=alice")
        proxy = alice.delegate(lifetime=10.0, issued_at=0.0)
        ca.register_proxy(proxy)
        with pytest.raises(CredentialError):
            ca.key_for_identity(proxy.identity, 20.0)

    def test_tampered_proxy_rejected(self, ca):
        alice = ca.issue("/CN=alice")
        proxy = alice.delegate(lifetime=10.0, issued_at=0.0)
        proxy.issuer_signature = "0" * 64
        with pytest.raises(CredentialError):
            ca.register_proxy(proxy)

    def test_unknown_issuer_rejected(self, ca):
        other_ca = CertificateAuthority("Other")
        mallory = other_ca.issue("/CN=mallory")
        proxy = mallory.delegate(lifetime=10.0, issued_at=0.0)
        with pytest.raises(CredentialError):
            ca.register_proxy(proxy)

    def test_depth_exhaustion(self, ca):
        alice = ca.issue("/CN=alice")
        proxy = alice.delegate(lifetime=1000.0, issued_at=0.0, depth_limit=1)
        child = proxy.delegate(lifetime=10.0, issued_at=0.0)
        with pytest.raises(CredentialError):
            child.delegate(lifetime=10.0, issued_at=0.0)

    def test_bad_lifetimes_rejected(self, ca):
        alice = ca.issue("/CN=alice")
        with pytest.raises(CredentialError):
            alice.delegate(lifetime=0.0, issued_at=0.0)
        proxy = alice.delegate(lifetime=10.0, issued_at=0.0)
        with pytest.raises(CredentialError):
            proxy.delegate(lifetime=5.0, issued_at=20.0)


class TestMessageSecurity:
    def test_signature_header_shape(self, ca):
        alice = ca.issue("/CN=alice")
        header = sign_request(alice, "getExecs", b"payload")
        assert header.tag == QName("urn:ppg:gsi", "Signature")
        assert header.find("Identity").text() == "/CN=alice"

    def test_verifier_accepts_valid(self, ca):
        clock = VirtualClock()
        alice = ca.issue("/CN=alice")
        verify = make_verifier(ca, clock)
        header = sign_request(alice, "op", b"body")
        verify([header], b"body")  # should not raise

    def test_verifier_rejects_unsigned(self, ca):
        verify = make_verifier(ca, VirtualClock())
        with pytest.raises(CredentialError):
            verify([], b"body")

    def test_optional_mode_admits_unsigned(self, ca):
        verify = make_verifier(ca, VirtualClock(), required=False)
        verify([], b"body")  # no exception

    def test_verifier_rejects_forged_identity(self, ca):
        clock = VirtualClock()
        ca.issue("/CN=alice")
        mallory_ca = CertificateAuthority("Evil")
        mallory = mallory_ca.issue("/CN=alice-forger")
        verify = make_verifier(ca, clock)
        header = sign_request(mallory, "op", b"body")
        with pytest.raises(CredentialError):
            verify([header], b"body")

    def test_verifier_rejects_operation_splice(self, ca):
        clock = VirtualClock()
        alice = ca.issue("/CN=alice")
        verify = make_verifier(ca, clock)
        header = sign_request(alice, "getExecs", b"body")
        # Change the claimed operation without re-signing.
        header.find("Operation").children = ["Destroy"]
        with pytest.raises(CredentialError):
            verify([header], b"body")


SECURE_PT = PortType(
    "Secure",
    "urn:sec",
    (Operation("whoami", (Parameter("name", "xsd:string"),), "xsd:string"),),
    extends=(GRID_SERVICE_PORTTYPE,),
)


class SecureService(GridServiceBase):
    porttype = SECURE_PT

    def whoami(self, name: str) -> str:
        return f"hello {name}"


class TestEndToEndSecurity:
    def test_signed_stub_passes_container_verifier(self):
        clock = VirtualClock()
        env = GridEnvironment(clock=clock)
        ca = CertificateAuthority()
        container = env.create_container("secure:1")
        container.verifier = make_verifier(ca, clock)
        gsh = container.deploy("services/secure", SecureService())

        # Unsigned call fails.
        plain = env.stub_for_handle(gsh, SECURE_PT)
        with pytest.raises(SoapFault):
            plain.whoami("x")

        # Signed call succeeds.
        alice = ca.issue("/CN=alice")
        signed = env.stub_for_handle(
            gsh, SECURE_PT, headers_provider=signature_header_provider(alice)
        )
        assert signed.whoami("alice") == "hello alice"

    def test_proxy_expiry_end_to_end(self):
        clock = VirtualClock()
        env = GridEnvironment(clock=clock)
        ca = CertificateAuthority()
        container = env.create_container("secure:1")
        container.verifier = make_verifier(ca, clock)
        gsh = container.deploy("services/secure", SecureService())
        alice = ca.issue("/CN=alice")
        proxy = alice.delegate(lifetime=100.0, issued_at=clock.now())
        ca.register_proxy(proxy)
        stub = env.stub_for_handle(
            gsh, SECURE_PT, headers_provider=signature_header_provider(proxy)
        )
        assert stub.whoami("p") == "hello p"
        clock.advance(200.0)
        with pytest.raises(SoapFault):
            stub.whoami("p")
